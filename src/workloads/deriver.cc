#include "workloads/deriver.h"

#include <functional>
#include <map>
#include <set>

#include "common/macros.h"
#include "common/strings.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace sfsql::workloads {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStatement;

namespace {

void Conjuncts(ExprPtr e, std::vector<ExprPtr>& out) {
  if (!e) return;
  if (e->kind == ExprKind::kBinary && e->bop == sql::BinaryOp::kAnd) {
    Conjuncts(std::move(e->lhs), out);
    Conjuncts(std::move(e->rhs), out);
    return;
  }
  out.push_back(std::move(e));
}

Status DeriveBlock(const catalog::Catalog& catalog, SelectStatement& stmt) {
  // Binding -> relation id for this block.
  std::map<std::string, int> binding_to_rel;
  for (const sql::TableRef& ref : stmt.from) {
    if (!ref.relation.exact()) {
      return Status::InvalidArgument("gold SQL must be fully specified");
    }
    SFSQL_ASSIGN_OR_RETURN(int rel, catalog.FindRelation(ref.relation.name));
    binding_to_rel[ToLower(ref.BindingName())] = rel;
  }

  // Split WHERE and identify FK-PK join conjuncts.
  std::vector<ExprPtr> conjuncts;
  Conjuncts(std::move(stmt.where), conjuncts);
  auto resolve = [&](const Expr& col) -> std::pair<int, int> {
    if (!col.relation.exact()) return {-1, -1};
    auto it = binding_to_rel.find(ToLower(col.relation.name));
    if (it == binding_to_rel.end()) return {-1, -1};
    int attr = catalog.relation(it->second).AttributeIndex(col.attribute.name);
    return {it->second, attr};
  };
  auto is_fk_join = [&](const Expr& e) {
    if (e.kind != ExprKind::kBinary || e.bop != sql::BinaryOp::kEq ||
        e.lhs->kind != ExprKind::kColumnRef ||
        e.rhs->kind != ExprKind::kColumnRef) {
      return false;
    }
    auto [ra, aa] = resolve(*e.lhs);
    auto [rb, ab] = resolve(*e.rhs);
    if (ra < 0 || rb < 0 || aa < 0 || ab < 0) return false;
    for (int f = 0; f < catalog.num_foreign_keys(); ++f) {
      const catalog::ForeignKey& fk = catalog.foreign_key(f);
      if ((fk.from_relation == ra && fk.from_attribute == aa &&
           fk.to_relation == rb && fk.to_attribute == ab) ||
          (fk.from_relation == rb && fk.from_attribute == ab &&
           fk.to_relation == ra && fk.to_attribute == aa)) {
        return true;
      }
    }
    return false;
  };

  std::vector<ExprPtr> retained;
  for (ExprPtr& c : conjuncts) {
    if (!is_fk_join(*c)) retained.push_back(std::move(c));
  }

  // End relations: bindings referenced by any retained (non-join) column.
  std::set<std::string> end_bindings;
  std::function<void(Expr&)> mark = [&](Expr& e) {
    if (e.kind == ExprKind::kColumnRef || e.kind == ExprKind::kStar) {
      if (e.relation.exact() &&
          binding_to_rel.count(ToLower(e.relation.name)) > 0) {
        end_bindings.insert(ToLower(e.relation.name));
      } else if (!e.relation.specified() && e.attribute.exact()) {
        // Unqualified: attribute's unique owner among the FROM relations.
        std::string owner;
        for (const auto& [binding, rel] : binding_to_rel) {
          if (catalog.relation(rel).AttributeIndex(e.attribute.name) >= 0) {
            owner = owner.empty() ? binding : owner;
          }
        }
        if (!owner.empty()) end_bindings.insert(owner);
      }
    }
    if (e.lhs) mark(*e.lhs);
    if (e.rhs) mark(*e.rhs);
    for (ExprPtr& a : e.args) mark(*a);
    if (e.subquery) {
      // Recurse into the inner block on its own terms.
      (void)DeriveBlock(catalog, *e.subquery);
    }
  };
  for (sql::SelectItem& item : stmt.select_items) mark(*item.expr);
  for (ExprPtr& c : retained) mark(*c);
  for (ExprPtr& g : stmt.group_by) mark(*g);
  if (stmt.having) mark(*stmt.having);
  for (sql::OrderItem& o : stmt.order_by) mark(*o.expr);

  // FROM keeps only end relations.
  std::vector<sql::TableRef> kept;
  for (sql::TableRef& ref : stmt.from) {
    if (end_bindings.count(ToLower(ref.BindingName())) > 0) {
      kept.push_back(std::move(ref));
    }
  }
  stmt.from = std::move(kept);

  // Rebuild WHERE from the retained conjuncts.
  ExprPtr where;
  for (ExprPtr& c : retained) {
    where = where ? Expr::Binary(sql::BinaryOp::kAnd, std::move(where),
                                 std::move(c))
                  : std::move(c);
  }
  stmt.where = std::move(where);
  return Status::OK();
}

}  // namespace

Result<std::string> DeriveSchemaFree(const catalog::Catalog& catalog,
                                     std::string_view gold_sql) {
  SFSQL_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(gold_sql));
  SFSQL_RETURN_IF_ERROR(DeriveBlock(catalog, *stmt));
  return sql::PrintSelect(*stmt);
}

}  // namespace sfsql::workloads
