#ifndef SFSQL_WORKLOADS_METRICS_H_
#define SFSQL_WORKLOADS_METRICS_H_

#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "obs/bench_report.h"
#include "storage/database.h"

namespace sfsql::workloads {

/// Stamps per-run metadata into a bench report (every bench_* binary calls
/// this right before WriteFile): the dataset's row counts (total in config,
/// per relation in a "dataset" table) and the database's cumulative
/// column-index counters — probes answered by index vs. scan, index builds
/// and build time, LIKE candidates verified — plus, when `engine` is given,
/// its satisfiability-memo hit/miss counters, and when `executor` is given,
/// its cumulative access-path counters (index scans vs table scans, rows
/// pruned below the join, predicates pushed).
void RecordRunMetadata(obs::BenchReport* report, const storage::Database& db,
                       const core::SchemaFreeEngine* engine = nullptr,
                       const exec::Executor* executor = nullptr);

/// Information-unit costs (§7.1). A schema element (relation or attribute
/// name) is one information unit; approximately specified elements count as a
/// full unit (the paper's deliberate overestimate of Schema-free SQL's cost).
///
/// The three interface models measured:
///  * Schema-free SQL — the user types only the names they guess: cost is the
///    number of *distinct* schema-element names mentioned (Example 11 counts
///    the Fig. 2 query as 6: actor, gender, name, director_name, year,
///    produce_company). ?x / ? placeholders convey no schema name and cost 0.
///  * Full SQL — the user types every relation mention in FROM and every
///    attribute mention everywhere, join conditions included.
///  * Visual query builder (GUI) — the user drags every relation of the join
///    network and fills in the selection/projection attributes; join columns
///    are completed by the tool.
struct InfoUnitCosts {
  double sfsql = 0;
  double gui = 0;
  double full_sql = 0;
};

/// Distinct schema-element names mentioned in a schema-free query
/// (subqueries included).
Result<int> SchemaFreeInfoUnits(std::string_view sfsql);

/// Total schema-element mentions in full SQL: one per FROM item plus one per
/// column reference (subqueries included).
Result<int> FullSqlInfoUnits(std::string_view sql);

/// GUI cost for the gold query: FROM mentions plus non-join column mentions
/// (FK-PK join predicates are excluded — the builder completes them).
Result<int> GuiInfoUnits(const catalog::Catalog& catalog, std::string_view sql);

/// The structural reading of a gold query's outermost block: its relation
/// multiset and FK-join multiset — the reference the translator must hit.
Result<core::NetworkSummary> AnalyzeGold(const catalog::Catalog& catalog,
                                         std::string_view gold_sql);

/// Effectiveness judgment: the translation is correct when its join network
/// matches the gold query's (relation and FK multisets) and, as a semantic
/// backstop, both produce identical result rows on `db`.
Result<bool> TranslationMatchesGold(const storage::Database& db,
                                    const core::Translation& translation,
                                    std::string_view gold_sql);

}  // namespace sfsql::workloads

#endif  // SFSQL_WORKLOADS_METRICS_H_
