#include "workloads/movie43.h"

namespace sfsql::workloads {

// The 17 textbook-style queries (Fig. 13's workload). Gold SQL is against the
// 43-relation schema of movie43.cc; the schema-free versions follow the
// paper's preprocessing (join paths and FROM deleted, column names merged with
// guessed relation names) and are what a SQL-literate user without schema
// knowledge would plausibly type.
const std::vector<BenchQuery>& TextbookQueries() {
  static const std::vector<BenchQuery>* const kQueries = new std::vector<
      BenchQuery>{
      {"T1", "Titles of movies released after 2000.",
       "SELECT title? WHERE year? > 2000",
       "SELECT title FROM Movie WHERE release_year > 2000"},

      {"T2", "Names of female persons.",
       "SELECT name? WHERE gender? = 'female'",
       "SELECT name FROM Person WHERE gender = 'female'"},

      {"T3", "Titles of Drama movies.",
       "SELECT movie?.title? WHERE genre? = 'Drama'",
       "SELECT Movie.title FROM Movie, Movie_Genre, Genre "
       "WHERE Movie.movie_id = Movie_Genre.movie_id "
       "AND Movie_Genre.genre_id = Genre.genre_id AND Genre.name = 'Drama'"},

      {"T4", "Names of the directors of Titanic.",
       "SELECT director?.name? WHERE title? = 'Titanic'",
       "SELECT Person.name FROM Person, Director, Movie "
       "WHERE Person.person_id = Director.person_id "
       "AND Director.movie_id = Movie.movie_id AND Movie.title = 'Titanic'"},

      {"T5", "Number of movies per genre.",
       "SELECT genre?.name?, count(movie_id?) GROUP BY genre?.name?",
       "SELECT Genre.name, count(Movie_Genre.movie_id) FROM Genre, Movie_Genre "
       "WHERE Genre.genre_id = Movie_Genre.genre_id GROUP BY Genre.name"},

      {"T6", "Average runtime of movies released after 2000.",
       "SELECT avg(runtime?) WHERE year? > 2000",
       "SELECT avg(runtime) FROM Movie WHERE release_year > 2000"},

      {"T7", "Titles of movies reviewer moviebuff99 scored above 8.",
       "SELECT title? WHERE score? > 8.0 AND nickname? = 'moviebuff99'",
       "SELECT Movie.title FROM Movie, Review, Reviewer "
       "WHERE Movie.movie_id = Review.movie_id "
       "AND Review.reviewer_id = Reviewer.reviewer_id "
       "AND Reviewer.nickname = 'moviebuff99' AND Review.score > 8.0"},

      {"T8", "Names of people who acted in a 2002 movie directed by Steven "
             "Spielberg.",
       "SELECT actor?.name? WHERE director_name? = 'Steven Spielberg' "
       "AND year? = 2002",
       "SELECT P1.name FROM Person AS P1, Actor, Movie, Director, Person AS P2 "
       "WHERE P1.person_id = Actor.person_id "
       "AND Actor.movie_id = Movie.movie_id "
       "AND Movie.movie_id = Director.movie_id "
       "AND Director.person_id = P2.person_id "
       "AND P2.name = 'Steven Spielberg' AND Movie.release_year = 2002"},

      {"T9", "Names of people who never acted.",
       "SELECT name? FROM Person WHERE NOT EXISTS (SELECT * FROM actor? WHERE "
       "actor?.person_id? = Person.person_id)",
       "SELECT name FROM Person WHERE NOT EXISTS (SELECT * FROM Actor WHERE "
       "Actor.person_id = Person.person_id)"},

      {"T10", "Title of the most recent movie.",
       "SELECT movie?.title? WHERE movie?.year? = (SELECT max(movie?.year?))",
       "SELECT title FROM Movie WHERE release_year = "
       "(SELECT max(release_year) FROM Movie)"},

      {"T11", "Number of awards of Tom Hanks.",
       "SELECT count(award?.name?) WHERE person_name? = 'Tom Hanks'",
       "SELECT count(Award.name) FROM Award, Person_Award, Person "
       "WHERE Award.award_id = Person_Award.award_id "
       "AND Person_Award.person_id = Person.person_id "
       "AND Person.name = 'Tom Hanks'"},

      {"T12", "Companies that produced more than 2 movies.",
       "SELECT produce_company?.name? GROUP BY produce_company?.name? "
       "HAVING count(movie_id?) > 2",
       "SELECT Company.name FROM Company, Movie_Producer "
       "WHERE Company.company_id = Movie_Producer.company_id "
       "GROUP BY Company.name HAVING count(Movie_Producer.movie_id) > 2"},

      {"T13", "Reviewer nicknames and scores of the reviews of Titanic.",
       "SELECT reviewer?.nickname?, review?.score? "
       "WHERE movie_title? = 'Titanic'",
       "SELECT Reviewer.nickname, Review.score FROM Reviewer, Review, Movie "
       "WHERE Reviewer.reviewer_id = Review.reviewer_id "
       "AND Review.movie_id = Movie.movie_id AND Movie.title = 'Titanic'"},

      {"T14", "Titles of movies filmed in Kyoto.",
       "SELECT title? WHERE city? = 'Kyoto'",
       "SELECT Movie.title FROM Movie, Movie_Location, Location "
       "WHERE Movie.movie_id = Movie_Location.movie_id "
       "AND Movie_Location.location_id = Location.location_id "
       "AND Location.city = 'Kyoto'"},

      {"T15", "Soundtrack titles of Titanic.",
       "SELECT soundtrack?.title? WHERE movie_title? = 'Titanic'",
       "SELECT Soundtrack.title FROM Soundtrack, Movie "
       "WHERE Soundtrack.movie_id = Movie.movie_id "
       "AND Movie.title = 'Titanic'"},

      {"T16", "Distinct genres of movies with Leonardo DiCaprio.",
       "SELECT DISTINCT genre?.name? WHERE actor_name? = 'Leonardo DiCaprio'",
       "SELECT DISTINCT Genre.name FROM Genre, Movie_Genre, Movie, Actor, "
       "Person WHERE Genre.genre_id = Movie_Genre.genre_id "
       "AND Movie_Genre.movie_id = Movie.movie_id "
       "AND Movie.movie_id = Actor.movie_id "
       "AND Actor.person_id = Person.person_id "
       "AND Person.name = 'Leonardo DiCaprio'"},

      {"T17", "Number of male actors in 20th Century Fox movies between 1995 "
              "and 2005.",
       "SELECT count(actor?.name?) WHERE actor?.gender? = 'male' "
       "AND produce_company? = '20th Century Fox' "
       "AND year? BETWEEN 1995 AND 2005",
       "SELECT count(P.name) FROM Person AS P, Actor, Movie, Movie_Producer, "
       "Company WHERE P.person_id = Actor.person_id "
       "AND Actor.movie_id = Movie.movie_id "
       "AND Movie.movie_id = Movie_Producer.movie_id "
       "AND Movie_Producer.company_id = Company.company_id "
       "AND P.gender = 'male' AND Company.name = '20th Century Fox' "
       "AND Movie.release_year BETWEEN 1995 AND 2005"},
  };
  return *kQueries;
}

// The six sophisticated queries of Fig. 14 (join paths over five or more
// relations), phrased as in the paper.
const std::vector<BenchQuery>& SophisticatedQueries() {
  static const std::vector<BenchQuery>* const kQueries = new std::vector<
      BenchQuery>{
      {"S1",
       "Male actors cooperated with director James Cameron in the movies "
       "produced by company 20th Century Fox from 1995 to 2010.",
       "SELECT actor?.name? WHERE actor?.gender? = 'male' "
       "AND director_name? = 'James Cameron' "
       "AND produce_company? = '20th Century Fox' "
       "AND year? > 1995 AND year? < 2010",
       "SELECT P1.name FROM Person AS P1, Person AS P2, Actor, Director, "
       "Movie, Movie_Producer, Company "
       "WHERE P1.person_id = Actor.person_id "
       "AND Actor.movie_id = Movie.movie_id "
       "AND Movie.movie_id = Director.movie_id "
       "AND Director.person_id = P2.person_id "
       "AND Movie.movie_id = Movie_Producer.movie_id "
       "AND Movie_Producer.company_id = Company.company_id "
       "AND P1.gender = 'male' AND P2.name = 'James Cameron' "
       "AND Company.name = '20th Century Fox' "
       "AND Movie.release_year > 1995 AND Movie.release_year < 2010"},

      {"S2", "Movies with genre Drama and director Peter Jackson.",
       "SELECT movie?.title? WHERE genre? = 'Drama' "
       "AND director_name? = 'Peter Jackson'",
       "SELECT Movie.title FROM Movie, Movie_Genre, Genre, Director, Person "
       "WHERE Movie.movie_id = Movie_Genre.movie_id "
       "AND Movie_Genre.genre_id = Genre.genre_id "
       "AND Movie.movie_id = Director.movie_id "
       "AND Director.person_id = Person.person_id "
       "AND Genre.name = 'Drama' AND Person.name = 'Peter Jackson'"},

      {"S3",
       "Movies produced by company Carthago Films, distributed by company "
       "Apollo Films, and directed by director Fahdel Jaziri.",
       "SELECT movie?.title? WHERE produce_company? = 'Carthago Films' "
       "AND distribute_company? = 'Apollo Films' "
       "AND director_name? = 'Fahdel Jaziri'",
       "SELECT Movie.title FROM Movie, Movie_Producer, Company AS C1, "
       "Movie_Distributor, Company AS C2, Director, Person "
       "WHERE Movie.movie_id = Movie_Producer.movie_id "
       "AND Movie_Producer.company_id = C1.company_id "
       "AND Movie.movie_id = Movie_Distributor.movie_id "
       "AND Movie_Distributor.company_id = C2.company_id "
       "AND Movie.movie_id = Director.movie_id "
       "AND Director.person_id = Person.person_id "
       "AND C1.name = 'Carthago Films' AND C2.name = 'Apollo Films' "
       "AND Person.name = 'Fahdel Jaziri'"},

      {"S4",
       "The number of movies directed by Steven Spielberg and acted by Tom "
       "Hanks.",
       "SELECT count(movie?.title?) WHERE director_name? = 'Steven Spielberg' "
       "AND actor_name? = 'Tom Hanks'",
       "SELECT count(Movie.title) FROM Movie, Director, Person AS P1, Actor, "
       "Person AS P2 WHERE Movie.movie_id = Director.movie_id "
       "AND Director.person_id = P1.person_id "
       "AND Movie.movie_id = Actor.movie_id "
       "AND Actor.person_id = P2.person_id "
       "AND P1.name = 'Steven Spielberg' AND P2.name = 'Tom Hanks'"},

      {"S5",
       "Actors acted in more than 3 movies with genre Action Adventure "
       "directed by Woody Allen.",
       "SELECT actor?.name? WHERE genre? = 'Action Adventure' "
       "AND director_name? = 'Woody Allen' "
       "GROUP BY actor?.name? HAVING count(movie?.title?) > 3",
       "SELECT P2.name FROM Person AS P1, Director, Movie, Movie_Genre, "
       "Genre, Actor, Person AS P2 "
       "WHERE P1.person_id = Director.person_id "
       "AND Director.movie_id = Movie.movie_id "
       "AND Movie.movie_id = Movie_Genre.movie_id "
       "AND Movie_Genre.genre_id = Genre.genre_id "
       "AND Movie.movie_id = Actor.movie_id "
       "AND Actor.person_id = P2.person_id "
       "AND Genre.name = 'Action Adventure' AND P1.name = 'Woody Allen' "
       "GROUP BY P2.name HAVING count(Movie.title) > 3"},

      {"S6",
       "Movies with genre Drama, financed by company LLC, directed by Stephen "
       "Gaghan.",
       "SELECT movie?.title? WHERE genre? = 'Drama' "
       "AND finance_company? = 'LLC' AND director_name? = 'Stephen Gaghan'",
       "SELECT Movie.title FROM Movie, Movie_Genre, Genre, Movie_Financer, "
       "Company, Director, Person "
       "WHERE Movie.movie_id = Movie_Genre.movie_id "
       "AND Movie_Genre.genre_id = Genre.genre_id "
       "AND Movie.movie_id = Movie_Financer.movie_id "
       "AND Movie_Financer.company_id = Company.company_id "
       "AND Movie.movie_id = Director.movie_id "
       "AND Director.person_id = Person.person_id "
       "AND Genre.name = 'Drama' AND Company.name = 'LLC' "
       "AND Person.name = 'Stephen Gaghan'"},
  };
  return *kQueries;
}

// Five simulated users per sophisticated query: different synonym choices,
// qualification habits, and verbosity (the stand-in for the paper's five
// recruited information-science students). The variations are syntactic —
// compound guesses, plural relation names, alternative qualifications — which
// is what SQL-literate users produce; the similarity machinery is purely
// string-based, so true synonyms (film for movie) are out of scope.
std::vector<std::string> UserVariants(int query_index) {
  static const std::vector<std::vector<std::string>>* const kVariants =
      new std::vector<std::vector<std::string>>{
          // S1
          {
              "SELECT actor?.name? WHERE actor?.gender? = 'male' AND "
              "director_name? = 'James Cameron' AND produce_company? = "
              "'20th Century Fox' AND year? > 1995 AND year? < 2010",
              "SELECT actor?.name? WHERE actor?.gender? = 'male' AND "
              "director?.name? = 'James Cameron' AND produce_company? = "
              "'20th Century Fox' AND release_year? > 1995 AND release_year? "
              "< 2010",
              "SELECT actors?.name? WHERE actors?.gender? = 'male' AND "
              "director_name? = 'James Cameron' AND producer_company? = "
              "'20th Century Fox' AND year? > 1995 AND year? < 2010",
              "SELECT actor?.name? WHERE actor?.gender? = 'male' AND "
              "director_name? = 'James Cameron' AND produce_company_name? = "
              "'20th Century Fox' AND release_year? > 1995 AND release_year? "
              "< 2010",
              "SELECT actor?.name? WHERE actor?.gender? = 'male' AND "
              "director?.name? = 'James Cameron' AND produce_company? = "
              "'20th Century Fox' AND year? BETWEEN 1996 AND 2009",
          },
          // S2
          {
              "SELECT movie?.title? WHERE genre? = 'Drama' AND "
              "director_name? = 'Peter Jackson'",
              "SELECT movie?.title? WHERE genre?.name? = 'Drama' AND "
              "director_name? = 'Peter Jackson'",
              "SELECT movies?.title? WHERE genre? = 'Drama' AND "
              "director?.name? = 'Peter Jackson'",
              "SELECT movie?.movie_title? WHERE genre? = 'Drama' AND "
              "director_name? = 'Peter Jackson'",
              "SELECT movie?.title? WHERE genre_name? = 'Drama' AND "
              "director_name? = 'Peter Jackson'",
          },
          // S3
          {
              "SELECT movie?.title? WHERE produce_company? = 'Carthago "
              "Films' AND distribute_company? = 'Apollo Films' AND "
              "director_name? = 'Fahdel Jaziri'",
              "SELECT movie?.title? WHERE producer_company? = 'Carthago "
              "Films' AND distributor_company? = 'Apollo Films' AND "
              "director?.name? = 'Fahdel Jaziri'",
              "SELECT movies?.title? WHERE produce_company? = 'Carthago "
              "Films' AND distribute_company? = 'Apollo Films' AND "
              "director_name? = 'Fahdel Jaziri'",
              "SELECT movie?.movie_title? WHERE produce_company_name? = "
              "'Carthago Films' AND distribute_company_name? = 'Apollo "
              "Films' AND director_name? = 'Fahdel Jaziri'",
              "SELECT movie?.title? WHERE produced_company? = 'Carthago "
              "Films' AND distributed_company? = 'Apollo Films' AND "
              "director_name? = 'Fahdel Jaziri'",
          },
          // S4
          {
              "SELECT count(movie?.title?) WHERE director_name? = 'Steven "
              "Spielberg' AND actor_name? = 'Tom Hanks'",
              "SELECT count(movies?.title?) WHERE director_name? = 'Steven "
              "Spielberg' AND actor_name? = 'Tom Hanks'",
              "SELECT count(movie?.title?) WHERE director?.name? = 'Steven "
              "Spielberg' AND actor?.name? = 'Tom Hanks'",
              "SELECT count(movie?.movie_title?) WHERE director_name? = "
              "'Steven Spielberg' AND actor_name? = 'Tom Hanks'",
              "SELECT count(movie?.title?) WHERE director_person_name? = "
              "'Steven Spielberg' AND actor_person_name? = 'Tom Hanks'",
          },
          // S5
          {
              "SELECT actor?.name? WHERE genre? = 'Action Adventure' AND "
              "director_name? = 'Woody Allen' GROUP BY actor?.name? HAVING "
              "count(movie?.title?) > 3",
              "SELECT actor?.name? WHERE genre?.name? = 'Action Adventure' "
              "AND director_name? = 'Woody Allen' GROUP BY actor?.name? "
              "HAVING count(movie?.title?) > 3",
              "SELECT actors?.name? WHERE genre? = 'Action Adventure' AND "
              "director?.name? = 'Woody Allen' GROUP BY actors?.name? HAVING "
              "count(movie?.title?) > 3",
              "SELECT actor?.name? WHERE genre_name? = 'Action Adventure' "
              "AND director_name? = 'Woody Allen' GROUP BY actor?.name? "
              "HAVING count(movie?.movie_title?) > 3",
              "SELECT actor?.name? WHERE genre? = 'Action Adventure' AND "
              "director?.name? = 'Woody Allen' GROUP BY actor?.name? HAVING "
              "count(movie?.title?) > 3",
          },
          // S6
          {
              "SELECT movie?.title? WHERE genre? = 'Drama' AND "
              "finance_company? = 'LLC' AND director_name? = 'Stephen "
              "Gaghan'",
              "SELECT movie?.title? WHERE genre?.name? = 'Drama' AND "
              "financer_company? = 'LLC' AND director?.name? = 'Stephen "
              "Gaghan'",
              "SELECT movies?.title? WHERE genre? = 'Drama' AND "
              "finance_company? = 'LLC' AND director_name? = 'Stephen "
              "Gaghan'",
              "SELECT movie?.movie_title? WHERE genre_name? = 'Drama' AND "
              "finance_company_name? = 'LLC' AND director_name? = 'Stephen "
              "Gaghan'",
              "SELECT movie?.title? WHERE genre? = 'Drama' AND "
              "financed_company? = 'LLC' AND director_name? = 'Stephen "
              "Gaghan'",
          },
      };
  return (*kVariants)[query_index];
}

}  // namespace sfsql::workloads
