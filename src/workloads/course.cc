#include "workloads/course.h"

#include "common/macros.h"
#include "workloads/datagen.h"
#include "workloads/schema_builder.h"

namespace sfsql::workloads {

using storage::Database;
using storage::Row;
using storage::Value;

namespace {

catalog::Catalog BuildCourse53Catalog() {
  SchemaBuilder b;
  b.Rel("Campus", "campus_id:int*, name:str, city:str");
  b.Rel("Building", "building_id:int*, name:str, campus_id:int");
  b.Rel("Room", "room_id:int*, building_id:int, room_number:int, capacity:int");
  b.Rel("Department", "dept_id:int*, name:str, building_id:int");
  b.Rel("Title", "title_id:int*, label:str");
  b.Rel("Instructor", "instructor_id:int*, name:str, dept_id:int, "
                      "title_id:int, office_room_id:int");
  b.Rel("Degree", "degree_id:int*, label:str");
  b.Rel("Program", "program_id:int*, name:str, dept_id:int, degree_id:int");
  b.Rel("Student", "student_id:int*, name:str, gender:str, admission_year:int, "
                   "program_id:int");
  b.Rel("Level", "level_id:int*, label:str");
  b.Rel("Course", "course_id:int*, title:str, credits:int, dept_id:int, "
                  "level_id:int");
  b.Rel("Season", "season_id:int*, label:str");
  b.Rel("Term", "term_id:int*, name:str, term_year:int, season_id:int");
  b.Rel("Course_Offering", "offering_id:int*, course_id:int, term_id:int, "
                           "capacity:int");
  b.Rel("Weekday", "weekday_id:int*, label:str");
  b.Rel("Section", "section_id:int*, offering_id:int, room_id:int, "
                   "weekday_id:int, start_hour:int");
  b.Rel("Teaching", "instructor_id:int*, offering_id:int*");
  b.Rel("Grade_Scale", "grade_id:int*, letter:str, points:double");
  b.Rel("Enrollment", "enrollment_id:int*, student_id:int, section_id:int, "
                      "grade_id:int, enroll_year:int");
  b.Rel("Prerequisite", "course_id:int*, prereq_course_id:int*");
  b.Rel("Author", "author_id:int*, name:str");
  b.Rel("Publisher", "publisher_id:int*, name:str");
  b.Rel("Textbook", "textbook_id:int*, title:str, author_id:int, "
                    "publisher_id:int, price:double");
  b.Rel("Course_Textbook", "course_id:int*, textbook_id:int*");
  b.Rel("Major", "major_id:int*, name:str, dept_id:int");
  b.Rel("Student_Major", "student_id:int*, major_id:int*");
  b.Rel("Student_Minor", "student_id:int*, major_id:int*");
  b.Rel("Advising", "student_id:int*, instructor_id:int*");
  b.Rel("Course_TA", "ta_id:int*, student_id:int, offering_id:int, "
                     "weekly_hours:int");
  b.Rel("Sponsor", "sponsor_id:int*, name:str");
  b.Rel("Scholarship", "scholarship_id:int*, name:str, amount:int, "
                       "sponsor_id:int");
  b.Rel("Student_Scholarship", "student_id:int*, scholarship_id:int*, "
                               "award_year:int");
  b.Rel("Club", "club_id:int*, name:str, advisor_instructor_id:int");
  b.Rel("Club_Member", "student_id:int*, club_id:int*, join_year:int");
  b.Rel("Course_Review", "review_id:int*, student_id:int, course_id:int, "
                         "rating_score:double, review_year:int");
  b.Rel("Requirement", "requirement_id:int*, program_id:int, label:str");
  b.Rel("Requirement_Course", "requirement_id:int*, course_id:int*");
  b.Rel("Exam", "exam_id:int*, offering_id:int, exam_date:str, room_id:int");
  b.Rel("Assignment", "assignment_id:int*, offering_id:int, title:str, "
                      "due_date:str");
  b.Rel("Submission", "submission_id:int*, assignment_id:int, student_id:int, "
                      "submit_date:str, points_score:double");
  b.Rel("Waitlist", "student_id:int*, section_id:int*, position:int");
  b.Rel("Office_Hours", "office_hours_id:int*, instructor_id:int, "
                        "weekday_id:int, start_hour:int, room_id:int");
  b.Rel("Research_Group", "group_id:int*, name:str, dept_id:int, "
                          "leader_instructor_id:int");
  b.Rel("Group_Member", "group_id:int*, student_id:int*");
  b.Rel("Publication", "publication_id:int*, title:str, publication_year:int, "
                       "group_id:int");
  b.Rel("Publication_Author", "publication_id:int*, instructor_id:int*");
  b.Rel("Lab", "lab_id:int*, name:str, room_id:int, group_id:int");
  b.Rel("Equipment", "equipment_id:int*, name:str, lab_id:int");
  b.Rel("Employer", "employer_id:int*, name:str, city:str");
  b.Rel("Internship", "internship_id:int*, student_id:int, employer_id:int, "
                      "intern_year:int");
  b.Rel("Alumni", "alumni_id:int*, student_id:int, graduation_year:int, "
                  "employer_id:int");
  b.Rel("Donation", "donation_id:int*, alumni_id:int, amount:int, "
                    "donation_year:int");
  b.Rel("Club_Event", "event_id:int*, name:str, club_id:int, room_id:int, "
                      "event_date:str");

  b.Fk("Building.campus_id", "Campus.campus_id");
  b.Fk("Room.building_id", "Building.building_id");
  b.Fk("Department.building_id", "Building.building_id");
  b.Fk("Instructor.dept_id", "Department.dept_id");
  b.Fk("Instructor.title_id", "Title.title_id");
  b.Fk("Instructor.office_room_id", "Room.room_id");
  b.Fk("Program.dept_id", "Department.dept_id");
  b.Fk("Program.degree_id", "Degree.degree_id");
  b.Fk("Student.program_id", "Program.program_id");
  b.Fk("Course.dept_id", "Department.dept_id");
  b.Fk("Course.level_id", "Level.level_id");
  b.Fk("Term.season_id", "Season.season_id");
  b.Fk("Course_Offering.course_id", "Course.course_id");
  b.Fk("Course_Offering.term_id", "Term.term_id");
  b.Fk("Section.offering_id", "Course_Offering.offering_id");
  b.Fk("Section.room_id", "Room.room_id");
  b.Fk("Section.weekday_id", "Weekday.weekday_id");
  b.Fk("Teaching.instructor_id", "Instructor.instructor_id");
  b.Fk("Teaching.offering_id", "Course_Offering.offering_id");
  b.Fk("Enrollment.student_id", "Student.student_id");
  b.Fk("Enrollment.section_id", "Section.section_id");
  b.Fk("Enrollment.grade_id", "Grade_Scale.grade_id");
  b.Fk("Prerequisite.course_id", "Course.course_id");
  b.Fk("Prerequisite.prereq_course_id", "Course.course_id");
  b.Fk("Textbook.author_id", "Author.author_id");
  b.Fk("Textbook.publisher_id", "Publisher.publisher_id");
  b.Fk("Course_Textbook.course_id", "Course.course_id");
  b.Fk("Course_Textbook.textbook_id", "Textbook.textbook_id");
  b.Fk("Major.dept_id", "Department.dept_id");
  b.Fk("Student_Major.student_id", "Student.student_id");
  b.Fk("Student_Major.major_id", "Major.major_id");
  b.Fk("Student_Minor.student_id", "Student.student_id");
  b.Fk("Student_Minor.major_id", "Major.major_id");
  b.Fk("Advising.student_id", "Student.student_id");
  b.Fk("Advising.instructor_id", "Instructor.instructor_id");
  b.Fk("Course_TA.student_id", "Student.student_id");
  b.Fk("Course_TA.offering_id", "Course_Offering.offering_id");
  b.Fk("Scholarship.sponsor_id", "Sponsor.sponsor_id");
  b.Fk("Student_Scholarship.student_id", "Student.student_id");
  b.Fk("Student_Scholarship.scholarship_id", "Scholarship.scholarship_id");
  b.Fk("Club.advisor_instructor_id", "Instructor.instructor_id");
  b.Fk("Club_Member.student_id", "Student.student_id");
  b.Fk("Club_Member.club_id", "Club.club_id");
  b.Fk("Course_Review.student_id", "Student.student_id");
  b.Fk("Course_Review.course_id", "Course.course_id");
  b.Fk("Requirement.program_id", "Program.program_id");
  b.Fk("Requirement_Course.requirement_id", "Requirement.requirement_id");
  b.Fk("Requirement_Course.course_id", "Course.course_id");
  b.Fk("Exam.offering_id", "Course_Offering.offering_id");
  b.Fk("Exam.room_id", "Room.room_id");
  b.Fk("Assignment.offering_id", "Course_Offering.offering_id");
  b.Fk("Submission.assignment_id", "Assignment.assignment_id");
  b.Fk("Submission.student_id", "Student.student_id");
  b.Fk("Waitlist.student_id", "Student.student_id");
  b.Fk("Waitlist.section_id", "Section.section_id");
  b.Fk("Office_Hours.instructor_id", "Instructor.instructor_id");
  b.Fk("Office_Hours.weekday_id", "Weekday.weekday_id");
  b.Fk("Office_Hours.room_id", "Room.room_id");
  b.Fk("Research_Group.dept_id", "Department.dept_id");
  b.Fk("Research_Group.leader_instructor_id", "Instructor.instructor_id");
  b.Fk("Group_Member.group_id", "Research_Group.group_id");
  b.Fk("Group_Member.student_id", "Student.student_id");
  b.Fk("Publication.group_id", "Research_Group.group_id");
  b.Fk("Publication_Author.publication_id", "Publication.publication_id");
  b.Fk("Publication_Author.instructor_id", "Instructor.instructor_id");
  b.Fk("Lab.room_id", "Room.room_id");
  b.Fk("Lab.group_id", "Research_Group.group_id");
  b.Fk("Equipment.lab_id", "Lab.lab_id");
  b.Fk("Internship.student_id", "Student.student_id");
  b.Fk("Internship.employer_id", "Employer.employer_id");
  b.Fk("Alumni.student_id", "Student.student_id");
  b.Fk("Alumni.employer_id", "Employer.employer_id");
  b.Fk("Donation.alumni_id", "Alumni.alumni_id");
  b.Fk("Club_Event.club_id", "Club.club_id");
  b.Fk("Club_Event.room_id", "Room.room_id");
  return b.Build();
}

catalog::Catalog BuildCourse21Catalog() {
  SchemaBuilder b;
  b.Rel("Department", "dept_id:int*, name:str, building:str");
  b.Rel("Instructor", "instructor_id:int*, name:str, dept_id:int, title:str");
  b.Rel("Student", "student_id:int*, name:str, gender:str, "
                   "admission_year:int, program:str, advisor_id:int");
  b.Rel("Course", "course_id:int*, title:str, credits:int, dept_id:int, "
                  "level:str");
  b.Rel("Offering", "offering_id:int*, course_id:int, term_name:str, "
                    "term_year:int, instructor_id:int, room:str, capacity:int");
  b.Rel("Enrollment", "student_id:int*, offering_id:int*, grade:str, "
                      "enroll_year:int");
  b.Rel("Prerequisite", "course_id:int*, prereq_course_id:int*");
  b.Rel("Textbook", "textbook_id:int*, title:str, author:str, publisher:str, "
                    "price:double");
  b.Rel("Course_Textbook", "course_id:int*, textbook_id:int*");
  b.Rel("Course_TA", "student_id:int*, offering_id:int*, weekly_hours:int");
  b.Rel("Scholarship", "scholarship_id:int*, name:str, amount:int, sponsor:str");
  b.Rel("Student_Scholarship", "student_id:int*, scholarship_id:int*, "
                               "award_year:int");
  b.Rel("Club", "club_id:int*, name:str, advisor_id:int");
  b.Rel("Club_Member", "student_id:int*, club_id:int*, join_year:int");
  b.Rel("Course_Review", "review_id:int*, student_id:int, course_id:int, "
                         "rating_score:double, review_year:int");
  b.Rel("Exam", "exam_id:int*, offering_id:int, exam_date:str, room:str");
  b.Rel("Assignment", "assignment_id:int*, offering_id:int, title:str, "
                      "due_date:str");
  b.Rel("Submission", "submission_id:int*, assignment_id:int, student_id:int, "
                      "points_score:double");
  b.Rel("Research_Group", "group_id:int*, name:str, dept_id:int, leader_id:int");
  b.Rel("Group_Member", "group_id:int*, student_id:int*");
  b.Rel("Internship", "internship_id:int*, student_id:int, employer:str, "
                      "intern_year:int");

  b.Fk("Instructor.dept_id", "Department.dept_id");
  b.Fk("Student.advisor_id", "Instructor.instructor_id");
  b.Fk("Course.dept_id", "Department.dept_id");
  b.Fk("Offering.course_id", "Course.course_id");
  b.Fk("Offering.instructor_id", "Instructor.instructor_id");
  b.Fk("Enrollment.student_id", "Student.student_id");
  b.Fk("Enrollment.offering_id", "Offering.offering_id");
  b.Fk("Prerequisite.course_id", "Course.course_id");
  b.Fk("Prerequisite.prereq_course_id", "Course.course_id");
  b.Fk("Course_Textbook.course_id", "Course.course_id");
  b.Fk("Course_Textbook.textbook_id", "Textbook.textbook_id");
  b.Fk("Course_TA.student_id", "Student.student_id");
  b.Fk("Course_TA.offering_id", "Offering.offering_id");
  b.Fk("Student_Scholarship.student_id", "Student.student_id");
  b.Fk("Student_Scholarship.scholarship_id", "Scholarship.scholarship_id");
  b.Fk("Club.advisor_id", "Instructor.instructor_id");
  b.Fk("Club_Member.student_id", "Student.student_id");
  b.Fk("Club_Member.club_id", "Club.club_id");
  b.Fk("Course_Review.student_id", "Student.student_id");
  b.Fk("Course_Review.course_id", "Course.course_id");
  b.Fk("Exam.offering_id", "Offering.offering_id");
  b.Fk("Assignment.offering_id", "Offering.offering_id");
  b.Fk("Submission.assignment_id", "Assignment.assignment_id");
  b.Fk("Submission.student_id", "Student.student_id");
  b.Fk("Research_Group.dept_id", "Department.dept_id");
  b.Fk("Research_Group.leader_id", "Instructor.instructor_id");
  b.Fk("Group_Member.group_id", "Research_Group.group_id");
  b.Fk("Group_Member.student_id", "Student.student_id");
  b.Fk("Internship.student_id", "Student.student_id");
  return b.Build();
}

}  // namespace

std::unique_ptr<Database> BuildCourse53(uint64_t seed, int rows_per_relation) {
  auto db = std::make_unique<Database>(BuildCourse53Catalog());
  SFSQL_CHECK(db->catalog().num_relations() == kCourse53Relations);

  DataGenerator gen(seed);
  SFSQL_CHECK(gen.Populate(db.get(), rows_per_relation).ok());

  auto S = [](const char* s) { return Value::String(s); };
  auto I = [](int64_t v) { return Value::Int(v); };
  auto D = [](double v) { return Value::Double(v); };
  auto plant = [&](std::string_view rel,
                   std::map<std::string, Value> values) -> Row {
    Result<Row> row = gen.Plant(db.get(), rel, values);
    SFSQL_CHECK(row.ok());
    return *row;
  };

  Row campus = plant("Campus", {{"name", S("North Campus")}});
  Row turing = plant("Building",
                     {{"name", S("Turing Hall")}, {"campus_id", campus[0]}});
  Row room101 = plant("Room", {{"building_id", turing[0]},
                               {"room_number", I(101)},
                               {"capacity", I(250)}});
  Row cs = plant("Department",
                 {{"name", S("Computer Science")}, {"building_id", turing[0]}});
  Row prof = plant("Title", {{"label", S("Professor")}});
  Row rossi = plant("Instructor", {{"name", S("Elena Rossi")},
                                   {"dept_id", cs[0]},
                                   {"title_id", prof[0]},
                                   {"office_room_id", room101[0]}});
  Row msc = plant("Degree", {{"label", S("Master of Science")}});
  Row cs_program = plant("Program", {{"name", S("Computer Science MS")},
                                     {"dept_id", cs[0]},
                                     {"degree_id", msc[0]}});
  Row priya = plant("Student", {{"name", S("Priya Patel")},
                                {"gender", S("female")},
                                {"admission_year", I(2021)},
                                {"program_id", cs_program[0]}});
  Row grad_level = plant("Level", {{"label", S("graduate")}});
  Row db_course = plant("Course", {{"title", S("Database Systems")},
                                   {"credits", I(4)},
                                   {"dept_id", cs[0]},
                                   {"level_id", grad_level[0]}});
  Row os_course = plant("Course", {{"title", S("Operating Systems")},
                                   {"credits", I(4)},
                                   {"dept_id", cs[0]},
                                   {"level_id", grad_level[0]}});
  Row fall = plant("Season", {{"label", S("Fall")}});
  Row fall23 = plant("Term", {{"name", S("Fall 2023")},
                              {"term_year", I(2023)},
                              {"season_id", fall[0]}});
  Row db_offering = plant("Course_Offering", {{"course_id", db_course[0]},
                                              {"term_id", fall23[0]},
                                              {"capacity", I(120)}});
  Row os_offering = plant("Course_Offering", {{"course_id", os_course[0]},
                                              {"term_id", fall23[0]},
                                              {"capacity", I(90)}});
  Row monday = plant("Weekday", {{"label", S("Monday")}});
  Row db_section = plant("Section", {{"offering_id", db_offering[0]},
                                     {"room_id", room101[0]},
                                     {"weekday_id", monday[0]},
                                     {"start_hour", I(10)}});
  plant("Teaching",
        {{"instructor_id", rossi[0]}, {"offering_id", db_offering[0]}});
  plant("Teaching",
        {{"instructor_id", rossi[0]}, {"offering_id", os_offering[0]}});
  Row grade_a =
      plant("Grade_Scale", {{"letter", S("A")}, {"points", D(4.0)}});
  plant("Enrollment", {{"student_id", priya[0]},
                       {"section_id", db_section[0]},
                       {"grade_id", grade_a[0]},
                       {"enroll_year", I(2023)}});
  plant("Prerequisite",
        {{"course_id", db_course[0]}, {"prereq_course_id", os_course[0]}});
  Row abiteboul = plant("Author", {{"name", S("Serge Abiteboul")}});
  Row awp = plant("Publisher", {{"name", S("Addison Wesley")}});
  Row found_db = plant("Textbook", {{"title", S("Foundations of Databases")},
                                    {"author_id", abiteboul[0]},
                                    {"publisher_id", awp[0]},
                                    {"price", D(119.0)}});
  plant("Course_Textbook",
        {{"course_id", db_course[0]}, {"textbook_id", found_db[0]}});
  Row cs_major = plant("Major", {{"name", S("Data Science")}, {"dept_id", cs[0]}});
  plant("Student_Major", {{"student_id", priya[0]}, {"major_id", cs_major[0]}});
  plant("Advising", {{"student_id", priya[0]}, {"instructor_id", rossi[0]}});
  plant("Course_TA", {{"student_id", priya[0]},
                      {"offering_id", os_offering[0]},
                      {"weekly_hours", I(10)}});
  Row acme = plant("Sponsor", {{"name", S("Acme Foundation")}});
  Row merit = plant("Scholarship", {{"name", S("Merit Award")},
                                    {"amount", I(5000)},
                                    {"sponsor_id", acme[0]}});
  plant("Student_Scholarship", {{"student_id", priya[0]},
                                {"scholarship_id", merit[0]},
                                {"award_year", I(2022)}});
  Row chess = plant("Club", {{"name", S("Chess Club")},
                             {"advisor_instructor_id", rossi[0]}});
  plant("Club_Member", {{"student_id", priya[0]},
                        {"club_id", chess[0]},
                        {"join_year", I(2021)}});
  plant("Course_Review", {{"student_id", priya[0]},
                          {"course_id", db_course[0]},
                          {"rating_score", D(9.5)},
                          {"review_year", I(2023)}});
  plant("Exam", {{"offering_id", db_offering[0]},
                 {"exam_date", S("2023-12-15")},
                 {"room_id", room101[0]}});
  Row hw1 = plant("Assignment", {{"offering_id", db_offering[0]},
                                 {"title", S("Query Optimizer")},
                                 {"due_date", S("2023-10-01")}});
  plant("Submission", {{"assignment_id", hw1[0]},
                       {"student_id", priya[0]},
                       {"submit_date", S("2023-09-30")},
                       {"points_score", D(95.0)}});
  Row ds_group = plant("Research_Group", {{"name", S("Data Systems Lab")},
                                          {"dept_id", cs[0]},
                                          {"leader_instructor_id", rossi[0]}});
  plant("Group_Member", {{"group_id", ds_group[0]}, {"student_id", priya[0]}});
  Row pub = plant("Publication", {{"title", S("Adaptive Query Processing")},
                                  {"publication_year", I(2022)},
                                  {"group_id", ds_group[0]}});
  plant("Publication_Author",
        {{"publication_id", pub[0]}, {"instructor_id", rossi[0]}});
  Row initech = plant("Employer", {{"name", S("Initech")}, {"city", S("Austin")}});
  plant("Internship", {{"student_id", priya[0]},
                       {"employer_id", initech[0]},
                       {"intern_year", I(2023)}});
  plant("Club_Event", {{"name", S("Winter Tournament")},
                       {"club_id", chess[0]},
                       {"room_id", room101[0]},
                       {"event_date", S("2023-12-02")}});
  return db;
}

std::unique_ptr<Database> BuildCourse21(uint64_t seed, int rows_per_relation) {
  auto db = std::make_unique<Database>(BuildCourse21Catalog());
  SFSQL_CHECK(db->catalog().num_relations() == kCourse21Relations);

  DataGenerator gen(seed);
  SFSQL_CHECK(gen.Populate(db.get(), rows_per_relation).ok());

  auto S = [](const char* s) { return Value::String(s); };
  auto I = [](int64_t v) { return Value::Int(v); };
  auto D = [](double v) { return Value::Double(v); };
  auto plant = [&](std::string_view rel,
                   std::map<std::string, Value> values) -> Row {
    Result<Row> row = gen.Plant(db.get(), rel, values);
    SFSQL_CHECK(row.ok());
    return *row;
  };

  Row cs = plant("Department",
                 {{"name", S("Computer Science")}, {"building", S("Turing Hall")}});
  Row rossi = plant("Instructor", {{"name", S("Elena Rossi")},
                                   {"dept_id", cs[0]},
                                   {"title", S("Professor")}});
  Row priya = plant("Student", {{"name", S("Priya Patel")},
                                {"gender", S("female")},
                                {"admission_year", I(2021)},
                                {"program", S("Computer Science MS")},
                                {"advisor_id", rossi[0]}});
  Row db_course = plant("Course", {{"title", S("Database Systems")},
                                   {"credits", I(4)},
                                   {"dept_id", cs[0]},
                                   {"level", S("graduate")}});
  Row os_course = plant("Course", {{"title", S("Operating Systems")},
                                   {"credits", I(4)},
                                   {"dept_id", cs[0]},
                                   {"level", S("graduate")}});
  Row db_offering = plant("Offering", {{"course_id", db_course[0]},
                                       {"term_name", S("Fall")},
                                       {"term_year", I(2023)},
                                       {"instructor_id", rossi[0]},
                                       {"room", S("Turing 101")},
                                       {"capacity", I(120)}});
  Row os_offering = plant("Offering", {{"course_id", os_course[0]},
                                       {"term_name", S("Fall")},
                                       {"term_year", I(2023)},
                                       {"instructor_id", rossi[0]},
                                       {"room", S("Turing 102")},
                                       {"capacity", I(90)}});
  plant("Enrollment", {{"student_id", priya[0]},
                       {"offering_id", db_offering[0]},
                       {"grade", S("A")},
                       {"enroll_year", I(2023)}});
  plant("Prerequisite",
        {{"course_id", db_course[0]}, {"prereq_course_id", os_course[0]}});
  Row found_db = plant("Textbook", {{"title", S("Foundations of Databases")},
                                    {"author", S("Serge Abiteboul")},
                                    {"publisher", S("Addison Wesley")},
                                    {"price", D(119.0)}});
  plant("Course_Textbook",
        {{"course_id", db_course[0]}, {"textbook_id", found_db[0]}});
  plant("Course_TA", {{"student_id", priya[0]},
                      {"offering_id", os_offering[0]},
                      {"weekly_hours", I(10)}});
  Row merit = plant("Scholarship", {{"name", S("Merit Award")},
                                    {"amount", I(5000)},
                                    {"sponsor", S("Acme Foundation")}});
  plant("Student_Scholarship", {{"student_id", priya[0]},
                                {"scholarship_id", merit[0]},
                                {"award_year", I(2022)}});
  Row chess = plant("Club", {{"name", S("Chess Club")}, {"advisor_id", rossi[0]}});
  plant("Club_Member", {{"student_id", priya[0]},
                        {"club_id", chess[0]},
                        {"join_year", I(2021)}});
  plant("Course_Review", {{"student_id", priya[0]},
                          {"course_id", db_course[0]},
                          {"rating_score", D(9.5)},
                          {"review_year", I(2023)}});
  plant("Exam", {{"offering_id", db_offering[0]},
                 {"exam_date", S("2023-12-15")},
                 {"room", S("Turing 101")}});
  Row hw1 = plant("Assignment", {{"offering_id", db_offering[0]},
                                 {"title", S("Query Optimizer")},
                                 {"due_date", S("2023-10-01")}});
  plant("Submission", {{"assignment_id", hw1[0]},
                       {"student_id", priya[0]},
                       {"points_score", D(95.0)}});
  Row ds_group = plant("Research_Group", {{"name", S("Data Systems Lab")},
                                          {"dept_id", cs[0]},
                                          {"leader_id", rossi[0]}});
  plant("Group_Member", {{"group_id", ds_group[0]}, {"student_id", priya[0]}});
  plant("Internship", {{"student_id", priya[0]},
                       {"employer", S("Initech")},
                       {"intern_year", I(2023)}});
  return db;
}

}  // namespace sfsql::workloads
