#ifndef SFSQL_WORKLOADS_MOVIE6_H_
#define SFSQL_WORKLOADS_MOVIE6_H_

#include <memory>

#include "storage/database.h"

namespace sfsql::workloads {

/// The paper's running example (Fig. 1): a movie database normalized into six
/// relations —
///   Person(person_id, name, gender)
///   Movie(movie_id, title, release_year)
///   Actor(person_id -> Person, movie_id -> Movie)
///   Director(person_id -> Person, movie_id -> Movie)
///   Movie_Producer(movie_id -> Movie, company_id -> Company)
///   Company(company_id, name)
/// populated with a small hand-authored data set in which the Fig. 2 query
/// ("male actors who cooperated with director James Cameron in a production by
/// 20th Century Fox from 1995 to 2005") has a known answer.
std::unique_ptr<storage::Database> BuildMovie6();

/// The full SQL the paper derives for the Fig. 2 query (Fig. 12), against the
/// BuildMovie6 schema.
const char* Movie6GoldSql();

/// The schema-free form of the query (Fig. 2).
const char* Movie6SchemaFreeSql();

}  // namespace sfsql::workloads

#endif  // SFSQL_WORKLOADS_MOVIE6_H_
