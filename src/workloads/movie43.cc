#include "workloads/movie43.h"

#include "common/macros.h"
#include "workloads/datagen.h"
#include "workloads/schema_builder.h"

namespace sfsql::workloads {

using storage::Database;
using storage::Row;
using storage::Value;

namespace {

catalog::Catalog BuildMovie43Catalog() {
  SchemaBuilder b;
  // Entity relations.
  b.Rel("Person", "person_id:int*, name:str, gender:str, birth_year:int, "
                  "birth_country_id:int");
  b.Rel("Movie", "movie_id:int*, title:str, release_year:int, runtime:int, "
                 "budget:int, sequel_of:int, primary_language_id:int");
  b.Rel("Company", "company_id:int*, name:str, founded_year:int, country_id:int");
  b.Rel("Genre", "genre_id:int*, name:str, parent_genre_id:int");
  b.Rel("Country", "country_id:int*, name:str");
  b.Rel("Language", "language_id:int*, name:str");
  b.Rel("Award", "award_id:int*, name:str, category:str");
  b.Rel("Keyword", "keyword_id:int*, word:str");
  b.Rel("Reviewer", "reviewer_id:int*, nickname:str, join_year:int, "
                    "country_id:int, favorite_genre_id:int");
  b.Rel("Location", "location_id:int*, city:str, country_id:int");
  b.Rel("Studio", "studio_id:int*, name:str, company_id:int");
  b.Rel("Series", "series_id:int*, name:str, company_id:int");
  b.Rel("Film_Character", "character_id:int*, name:str");
  b.Rel("Rating_Source", "source_id:int*, name:str");
  b.Rel("Certification", "cert_id:int*, label:str, country_id:int");

  // Role relations (Person x Movie).
  b.Rel("Actor", "person_id:int*, movie_id:int*");
  b.Rel("Director", "person_id:int*, movie_id:int*");
  b.Rel("Producer", "person_id:int*, movie_id:int*");
  b.Rel("Writer", "person_id:int*, movie_id:int*");
  b.Rel("Cinematographer", "person_id:int*, movie_id:int*");
  b.Rel("Film_Composer", "person_id:int*, movie_id:int*");
  b.Rel("Editor", "person_id:int*, movie_id:int*");

  // Company involvement.
  b.Rel("Movie_Producer", "movie_id:int*, company_id:int*");
  b.Rel("Movie_Distributor", "movie_id:int*, company_id:int*");
  b.Rel("Movie_Financer", "movie_id:int*, company_id:int*");

  // Movie attributes spread by normalization.
  b.Rel("Movie_Genre", "movie_id:int*, genre_id:int*");
  b.Rel("Movie_Country", "movie_id:int*, country_id:int*");
  b.Rel("Movie_Language", "movie_id:int*, language_id:int*");
  b.Rel("Movie_Award", "movie_id:int*, award_id:int*, award_year:int, "
                       "result:str");
  b.Rel("Person_Award", "person_id:int*, award_id:int*, award_year:int, "
                        "result:str");
  b.Rel("Movie_Keyword", "movie_id:int*, keyword_id:int*");
  b.Rel("Review", "review_id:int*, reviewer_id:int, movie_id:int, score:double, "
                  "review_year:int");
  b.Rel("Movie_Location", "movie_id:int*, location_id:int*");
  b.Rel("Movie_Studio", "movie_id:int*, studio_id:int*");
  b.Rel("Movie_Series", "movie_id:int*, series_id:int*, sequence_number:int");
  b.Rel("Cast_Character", "person_id:int*, movie_id:int*, character_id:int*");
  b.Rel("Trailer", "trailer_id:int*, movie_id:int, duration:int, "
                   "language_id:int");
  b.Rel("Poster", "poster_id:int*, movie_id:int, width:int, height:int");
  b.Rel("Movie_Rating", "movie_id:int*, source_id:int*, score:double, "
                        "votes:int");
  b.Rel("Movie_Certification", "movie_id:int*, cert_id:int*, country_id:int*");
  b.Rel("Soundtrack", "track_id:int*, movie_id:int, title:str, "
                      "composer_person_id:int, language_id:int");
  b.Rel("Box_Office", "movie_id:int*, country_id:int*, gross:int, "
                      "distributor_company_id:int");
  b.Rel("Movie_Release", "release_id:int*, movie_id:int, country_id:int, "
                         "release_date:str, cert_id:int");

  // 71 FK-PK pairs.
  b.Fk("Person.birth_country_id", "Country.country_id");        // 1
  b.Fk("Movie.sequel_of", "Movie.movie_id");                    // 2
  b.Fk("Movie.primary_language_id", "Language.language_id");    // 3
  b.Fk("Company.country_id", "Country.country_id");             // 4
  b.Fk("Genre.parent_genre_id", "Genre.genre_id");              // 5
  b.Fk("Reviewer.country_id", "Country.country_id");            // 6
  b.Fk("Location.country_id", "Country.country_id");            // 7
  b.Fk("Studio.company_id", "Company.company_id");              // 8
  b.Fk("Series.company_id", "Company.company_id");              // 9
  b.Fk("Certification.country_id", "Country.country_id");       // 10
  b.Fk("Actor.person_id", "Person.person_id");                  // 11
  b.Fk("Actor.movie_id", "Movie.movie_id");                     // 12
  b.Fk("Director.person_id", "Person.person_id");               // 13
  b.Fk("Director.movie_id", "Movie.movie_id");                  // 14
  b.Fk("Producer.person_id", "Person.person_id");               // 15
  b.Fk("Producer.movie_id", "Movie.movie_id");                  // 16
  b.Fk("Writer.person_id", "Person.person_id");                 // 17
  b.Fk("Writer.movie_id", "Movie.movie_id");                    // 18
  b.Fk("Cinematographer.person_id", "Person.person_id");        // 19
  b.Fk("Cinematographer.movie_id", "Movie.movie_id");           // 20
  b.Fk("Film_Composer.person_id", "Person.person_id");          // 21
  b.Fk("Film_Composer.movie_id", "Movie.movie_id");             // 22
  b.Fk("Editor.person_id", "Person.person_id");                 // 23
  b.Fk("Editor.movie_id", "Movie.movie_id");                    // 24
  b.Fk("Movie_Producer.movie_id", "Movie.movie_id");            // 25
  b.Fk("Movie_Producer.company_id", "Company.company_id");      // 26
  b.Fk("Movie_Distributor.movie_id", "Movie.movie_id");         // 27
  b.Fk("Movie_Distributor.company_id", "Company.company_id");   // 28
  b.Fk("Movie_Financer.movie_id", "Movie.movie_id");            // 29
  b.Fk("Movie_Financer.company_id", "Company.company_id");      // 30
  b.Fk("Movie_Genre.movie_id", "Movie.movie_id");               // 31
  b.Fk("Movie_Genre.genre_id", "Genre.genre_id");               // 32
  b.Fk("Movie_Country.movie_id", "Movie.movie_id");             // 33
  b.Fk("Movie_Country.country_id", "Country.country_id");       // 34
  b.Fk("Movie_Language.movie_id", "Movie.movie_id");            // 35
  b.Fk("Movie_Language.language_id", "Language.language_id");   // 36
  b.Fk("Movie_Award.movie_id", "Movie.movie_id");               // 37
  b.Fk("Movie_Award.award_id", "Award.award_id");               // 38
  b.Fk("Person_Award.person_id", "Person.person_id");           // 39
  b.Fk("Person_Award.award_id", "Award.award_id");              // 40
  b.Fk("Movie_Keyword.movie_id", "Movie.movie_id");             // 41
  b.Fk("Movie_Keyword.keyword_id", "Keyword.keyword_id");       // 42
  b.Fk("Review.reviewer_id", "Reviewer.reviewer_id");           // 43
  b.Fk("Review.movie_id", "Movie.movie_id");                    // 44
  b.Fk("Movie_Location.movie_id", "Movie.movie_id");            // 45
  b.Fk("Movie_Location.location_id", "Location.location_id");   // 46
  b.Fk("Movie_Studio.movie_id", "Movie.movie_id");              // 47
  b.Fk("Movie_Studio.studio_id", "Studio.studio_id");           // 48
  b.Fk("Movie_Series.movie_id", "Movie.movie_id");              // 49
  b.Fk("Movie_Series.series_id", "Series.series_id");           // 50
  b.Fk("Cast_Character.person_id", "Person.person_id");         // 51
  b.Fk("Cast_Character.movie_id", "Movie.movie_id");            // 52
  b.Fk("Cast_Character.character_id", "Film_Character.character_id");  // 53
  b.Fk("Trailer.movie_id", "Movie.movie_id");                   // 54
  b.Fk("Trailer.language_id", "Language.language_id");          // 55
  b.Fk("Poster.movie_id", "Movie.movie_id");                    // 56
  b.Fk("Movie_Rating.movie_id", "Movie.movie_id");              // 57
  b.Fk("Movie_Rating.source_id", "Rating_Source.source_id");    // 58
  b.Fk("Movie_Certification.movie_id", "Movie.movie_id");       // 59
  b.Fk("Movie_Certification.cert_id", "Certification.cert_id"); // 60
  b.Fk("Movie_Certification.country_id", "Country.country_id"); // 61
  b.Fk("Soundtrack.movie_id", "Movie.movie_id");                // 62
  b.Fk("Soundtrack.composer_person_id", "Person.person_id");    // 63
  b.Fk("Soundtrack.language_id", "Language.language_id");       // 64
  b.Fk("Box_Office.movie_id", "Movie.movie_id");                // 65
  b.Fk("Box_Office.country_id", "Country.country_id");          // 66
  b.Fk("Box_Office.distributor_company_id", "Company.company_id");  // 67
  b.Fk("Movie_Release.movie_id", "Movie.movie_id");             // 68
  b.Fk("Movie_Release.country_id", "Country.country_id");       // 69
  b.Fk("Movie_Release.cert_id", "Certification.cert_id");       // 70
  b.Fk("Reviewer.favorite_genre_id", "Genre.genre_id");         // 71
  return b.Build();
}

}  // namespace

std::unique_ptr<Database> BuildMovie43(uint64_t seed, int rows_per_relation,
                                       int scale) {
  auto db = std::make_unique<Database>(BuildMovie43Catalog());
  SFSQL_CHECK(db->catalog().num_relations() == kMovie43Relations);
  SFSQL_CHECK(db->catalog().num_foreign_keys() == kMovie43ForeignKeys);

  DataGenerator gen(seed);
  SFSQL_CHECK(gen.Populate(db.get(), rows_per_relation, {}, scale).ok());

  auto S = [](const char* s) { return Value::String(s); };
  auto I = [](int64_t v) { return Value::Int(v); };
  auto plant = [&](std::string_view rel,
                   std::map<std::string, Value> values) -> Row {
    Result<Row> row = gen.Plant(db.get(), rel, values);
    SFSQL_CHECK(row.ok());
    return *row;
  };

  // --- People ---
  auto person = [&](const char* name, const char* gender) {
    return plant("Person", {{"name", S(name)}, {"gender", S(gender)}})[0];
  };
  Value cameron = person("James Cameron", "male");
  Value hanks = person("Tom Hanks", "male");
  Value jackson = person("Peter Jackson", "male");
  Value spielberg = person("Steven Spielberg", "male");
  Value allen = person("Woody Allen", "male");
  Value jaziri = person("Fahdel Jaziri", "male");
  Value gaghan = person("Stephen Gaghan", "male");
  Value dicaprio = person("Leonardo DiCaprio", "male");
  Value winslet = person("Kate Winslet", "female");
  Value johansson = person("Scarlett Johansson", "female");
  Value williams = person("John Williams", "male");

  // --- Companies, genres, sources ---
  auto company = [&](const char* name) {
    return plant("Company", {{"name", S(name)}})[0];
  };
  Value fox = company("20th Century Fox");
  Value carthago = company("Carthago Films");
  Value apollo = company("Apollo Films");
  Value llc = company("LLC");
  Value dream = company("DreamPictures");

  Value drama = plant("Genre", {{"name", S("Drama")}})[0];
  Value action_adv = plant("Genre", {{"name", S("Action Adventure")}})[0];
  Value imdb = plant("Rating_Source", {{"name", S("IMDb")}})[0];
  Value kyoto = plant("Location", {{"city", S("Kyoto")}})[0];
  Value oscar =
      plant("Award", {{"name", S("Academy Award")}, {"category", S("Best Actor")}})[0];
  Value critic = plant("Reviewer", {{"nickname", S("moviebuff99")}})[0];

  // --- Movies with their role/company/genre links ---
  auto movie = [&](const char* title, int64_t year) {
    return plant("Movie", {{"title", S(title)}, {"release_year", I(year)}})[0];
  };
  auto link2 = [&](const char* rel, const char* a_name, Value a,
                   const char* b_name, Value b) {
    plant(rel, {{a_name, a}, {b_name, b}});
  };
  auto directs = [&](Value p, Value m) {
    link2("Director", "person_id", p, "movie_id", m);
  };
  auto acts = [&](Value p, Value m) {
    link2("Actor", "person_id", p, "movie_id", m);
  };
  auto produced_by = [&](Value m, Value c) {
    link2("Movie_Producer", "movie_id", m, "company_id", c);
  };
  auto distributed_by = [&](Value m, Value c) {
    link2("Movie_Distributor", "movie_id", m, "company_id", c);
  };
  auto financed_by = [&](Value m, Value c) {
    link2("Movie_Financer", "movie_id", m, "company_id", c);
  };
  auto has_genre = [&](Value m, Value g) {
    link2("Movie_Genre", "movie_id", m, "genre_id", g);
  };

  Value titanic = movie("Titanic", 1997);
  directs(cameron, titanic);
  acts(dicaprio, titanic);
  acts(winslet, titanic);
  acts(hanks, titanic);
  produced_by(titanic, fox);
  has_genre(titanic, drama);
  plant("Movie_Rating", {{"movie_id", titanic},
                         {"source_id", imdb},
                         {"score", Value::Double(8.5)},
                         {"votes", I(900000)}});
  plant("Movie_Location", {{"movie_id", titanic}, {"location_id", kyoto}});
  plant("Soundtrack", {{"movie_id", titanic},
                       {"title", S("My Heart Will Go On")},
                       {"composer_person_id", williams}});
  plant("Review", {{"reviewer_id", critic},
                   {"movie_id", titanic},
                   {"score", Value::Double(9.0)},
                   {"review_year", I(1998)}});

  Value avatar = movie("Avatar", 2009);
  directs(cameron, avatar);
  acts(winslet, avatar);
  produced_by(avatar, fox);

  Value catch_me = movie("Catch Me If You Can", 2002);
  directs(spielberg, catch_me);
  acts(dicaprio, catch_me);
  acts(hanks, catch_me);
  produced_by(catch_me, dream);
  has_genre(catch_me, drama);

  Value lovely_bones = movie("The Lovely Bones", 2009);
  directs(jackson, lovely_bones);
  has_genre(lovely_bones, drama);

  Value dancing_dust = movie("Dancing Dust", 2005);
  directs(jaziri, dancing_dust);
  produced_by(dancing_dust, carthago);
  distributed_by(dancing_dust, apollo);

  Value syriana = movie("Syriana", 2005);
  directs(gaghan, syriana);
  has_genre(syriana, drama);
  financed_by(syriana, llc);

  // Woody Allen's four Action Adventure movies, all with Scarlett Johansson —
  // feeds the HAVING count(*) > 3 query (S5).
  const char* allen_titles[] = {"Night Circus", "Night Circus Returns",
                                "Night Circus Forever", "Night Circus Finale"};
  for (int i = 0; i < 4; ++i) {
    Value m = movie(allen_titles[i], 2004 + i);
    directs(allen, m);
    acts(johansson, m);
    has_genre(m, action_adv);
  }

  // Tom Hanks' Academy Award, for the award queries.
  plant("Person_Award", {{"person_id", hanks},
                         {"award_id", oscar},
                         {"award_year", I(1994)},
                         {"result", S("won")}});

  return db;
}

}  // namespace sfsql::workloads
