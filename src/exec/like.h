#ifndef SFSQL_EXEC_LIKE_H_
#define SFSQL_EXEC_LIKE_H_

#include <string>
#include <string_view>
#include <vector>

namespace sfsql::exec {

/// SQL LIKE matching: '%' matches any run (including empty), '_' any one
/// character. Case-sensitive.
///
/// `escape` is the SQL ESCAPE character ('\0' = none, the default). When set,
/// escape followed by any character makes that character literal — so
/// LikeMatch("100%", "100\\%", '\\') is true while LikeMatch("1000", "100\\%",
/// '\\') is false. A trailing escape with nothing to escape matches a literal
/// escape character (engines differ here; erroring would poison whole
/// predicates, so we pick the forgiving reading).
bool LikeMatch(std::string_view text, std::string_view pattern,
               char escape = '\0');

/// Extracts the ESCAPE character from its textual spec, the form both the AST
/// (Expr::like_escape) and the mapper's Condition (values[1]) carry it in:
/// "" means no escape, otherwise the first character is the escape.
char LikeEscapeChar(std::string_view escape_spec);

/// What a LIKE pattern demands of any matching string, computed once per
/// pattern. Every literal run (maximal stretch of non-wildcard characters,
/// with escapes already resolved) must appear in a matching string as a
/// contiguous substring, which is what lets the trigram index pre-filter
/// candidates (storage/column_index).
struct LikePatternInfo {
  /// True if the pattern contains an (unescaped) '%' or '_'. A wildcard-free
  /// pattern matches exactly one string: the concatenated literal runs.
  bool has_wildcards = false;
  /// Maximal runs of literal characters; '_' and '%' both terminate a run
  /// ('_' consumes exactly one character, so the runs around it are not
  /// contiguous with each other). Empty runs are omitted.
  std::vector<std::string> literal_runs;
  /// The literal characters before the first wildcard (escapes resolved):
  /// every matching string must start with exactly these characters, which
  /// lets a sorted string index narrow candidates to a contiguous range.
  /// Equals the whole unescaped pattern when has_wildcards is false.
  std::string prefix;
};

LikePatternInfo AnalyzeLikePattern(std::string_view pattern, char escape);

}  // namespace sfsql::exec

#endif  // SFSQL_EXEC_LIKE_H_
