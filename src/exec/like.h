#ifndef SFSQL_EXEC_LIKE_H_
#define SFSQL_EXEC_LIKE_H_

#include <string_view>

namespace sfsql::exec {

/// SQL LIKE matching: '%' matches any run (including empty), '_' any one
/// character. Case-sensitive, no escape character.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace sfsql::exec

#endif  // SFSQL_EXEC_LIKE_H_
