#ifndef SFSQL_EXEC_LIKE_H_
#define SFSQL_EXEC_LIKE_H_

#include <string_view>

namespace sfsql::exec {

/// SQL LIKE matching: '%' matches any run (including empty), '_' any one
/// character. Case-sensitive.
///
/// `escape` is the SQL ESCAPE character ('\0' = none, the default). When set,
/// escape followed by any character makes that character literal — so
/// LikeMatch("100%", "100\\%", '\\') is true while LikeMatch("1000", "100\\%",
/// '\\') is false. A trailing escape with nothing to escape matches a literal
/// escape character (engines differ here; erroring would poison whole
/// predicates, so we pick the forgiving reading).
bool LikeMatch(std::string_view text, std::string_view pattern,
               char escape = '\0');

}  // namespace sfsql::exec

#endif  // SFSQL_EXEC_LIKE_H_
