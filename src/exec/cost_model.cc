#include "exec/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>

namespace sfsql::exec {

namespace {

// Per-row cost constants, calibrated against bench_execute on this engine's
// operators (Values are variant-heavy, so hashing a Row key — one vector
// allocation plus per-Value hashing — costs several times a sequential read
// or a Value::Compare). Units are arbitrary; only ratios matter.
constexpr double kScanRow = 1.0;        // sequential chunk read + pushed eval
constexpr double kIndexRow = 2.0;       // row fetched through row-id list
constexpr double kHashBuildRow = 6.0;   // Row key alloc + hash-map insert
constexpr double kHashProbeRow = 4.0;   // Row key alloc + hash-map lookup
constexpr double kProbeLog = 4.0;       // index probe, per log2(distinct)
constexpr double kSortCmp = 0.35;       // stable_sort comparison (Value::Compare)
constexpr double kMergeRow = 1.0;       // merge-pointer advance
constexpr double kNlRow = 0.5;          // nested-loop pair visit
constexpr double kOutRow = 1.0;         // emit one combined row
// Default selectivity of a pushed conjunct the index could not answer.
constexpr double kDefaultConjunctSel = 1.0 / 3.0;

double Log2(double x) { return std::log2(x + 2.0); }

/// Cost of materializing one table's filtered base rows (stage 1 of the
/// fold): row-id fetches for an IndexScan, a chunk walk over the surviving
/// chunks otherwise.
double ScanCost(const TablePlan& tp) {
  if (tp.index_scan) return kIndexRow * static_cast<double>(tp.row_ids.size());
  return kScanRow * static_cast<double>(tp.scan_rows);
}

/// The key columns an intermediate result is sorted by after a sort-merge
/// step: (FROM slot, attribute) of the accumulated-side edge endpoints, in
/// equi-join edge order — exactly the key order the executor sorts with.
using SortSig = std::vector<std::pair<int, int>>;

struct Entry {
  double cost = 0.0;
  double rows = 0.0;
  std::vector<int> order;
  std::vector<JoinStepEstimate> steps;
  SortSig sig;
};

/// Table-level NDV with a tiny per-(relation, attr) cache; ≥ 1 so it can sit
/// in a denominator. A column with a freshly built column index answers with
/// the index's exact distinct count — at 1M rows the chunk-sketch union
/// saturates, and join columns are exactly the ones whose indexes get built
/// (probe paths build them lazily), so the exact numbers are usually there
/// by the second plan. Nothing is built here: only published indexes are
/// snapshotted.
class NdvCache {
 public:
  explicit NdvCache(const storage::Database& db) : db_(db) {
    for (const auto& info : db.BuiltColumnIndexes()) {
      if (info.built_rows != db.table(info.relation_id).num_rows()) {
        continue;  // stale: the table grew since the build
      }
      cache_.emplace((static_cast<int64_t>(info.relation_id) << 32) |
                         info.attr_index,
                     std::max(1.0, static_cast<double>(info.num_distinct)));
    }
  }

  double Get(int relation_id, int attr) {
    const int64_t key = (static_cast<int64_t>(relation_id) << 32) | attr;
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const storage::ColumnStats stats =
        db_.table(relation_id).ColumnStatsFor(static_cast<size_t>(attr));
    const double ndv =
        std::max(1.0, static_cast<double>(stats.distinct_estimate));
    cache_.emplace(key, ndv);
    return ndv;
  }

 private:
  const storage::Database& db_;
  std::unordered_map<int64_t, double> cache_;
};

/// One edge as seen from table `t`: the attribute on t's side and the other
/// endpoint.
struct EdgeView {
  int t_attr = -1;
  int other_slot = -1;
  int other_attr = -1;
};

struct StepCandidate {
  JoinAlgo algo = JoinAlgo::kNone;
  double step_cost = 0.0;
  double rows_out = 0.0;
  SortSig sig;
};

class Planner {
 public:
  Planner(const storage::Database& db, const std::vector<TablePlan>& tables,
          const std::vector<PlannedEquiJoin>& edges, const ExecConfig& config,
          bool allow_sort_merge)
      : tables_(tables),
        edges_(edges),
        config_(config),
        allow_sort_merge_(allow_sort_merge),
        ndv_(db) {
    base_rows_.reserve(tables.size());
    for (const TablePlan& tp : tables) {
      base_rows_.push_back(EstimateBaseRows(tp));
    }
  }

  double base_rows(int t) const { return base_rows_[t]; }

  /// Edges joining table `t` to the tables in `mask`, in equi-join order
  /// (the executor builds its key list in the same order).
  std::vector<EdgeView> EdgesTo(int t, uint32_t mask) const {
    std::vector<EdgeView> out;
    for (const PlannedEquiJoin& e : edges_) {
      if (e.left_from == t && (mask >> e.right_from) & 1) {
        out.push_back(EdgeView{e.left_attr, e.right_from, e.right_attr});
      } else if (e.right_from == t && (mask >> e.left_from) & 1) {
        out.push_back(EdgeView{e.right_attr, e.left_from, e.left_attr});
      }
    }
    return out;
  }

  /// Costs the step joining table `t` onto `entry` (whose placed set is
  /// `mask`) and returns the cheapest algorithm. Deterministic: candidates
  /// are tried in a fixed order and replaced only on strictly lower cost.
  StepCandidate BestStep(const Entry& entry, uint32_t mask, int t) {
    const TablePlan& tp = tables_[t];
    const double est_t = base_rows_[t];
    const std::vector<EdgeView> edges = EdgesTo(t, mask);

    StepCandidate best;
    if (edges.empty()) {
      best.algo = JoinAlgo::kNestedLoop;
      best.rows_out = entry.rows * est_t;
      best.step_cost =
          ScanCost(tp) + kNlRow * entry.rows * est_t + kOutRow * best.rows_out;
      best.sig = entry.sig;  // base rows iterate in order; order preserved
      return best;
    }

    double sel = 1.0;
    SortSig keycols;
    keycols.reserve(edges.size());
    for (const EdgeView& e : edges) {
      const double ndv_t =
          std::min(ndv_.Get(tp.relation_id, e.t_attr), std::max(1.0, est_t));
      const double ndv_o =
          std::min(ndv_.Get(tables_[e.other_slot].relation_id, e.other_attr),
                   std::max(1.0, base_rows_[e.other_slot]));
      sel /= std::max(ndv_t, ndv_o);
      keycols.emplace_back(e.other_slot, e.other_attr);
    }
    const double rows_out = entry.rows * est_t * sel;

    // Hash join: materialize + build on the new side, probe per accumulated
    // row. Preserves the accumulated order (probes iterate it in order).
    best.algo = JoinAlgo::kHash;
    best.rows_out = rows_out;
    best.step_cost = ScanCost(tp) + kHashBuildRow * est_t +
                     kHashProbeRow * entry.rows + kOutRow * rows_out;
    best.sig = entry.sig;

    // Index nested-loop join: same eligibility rule as the executor (no
    // IndexScan on this table — its sargable conjuncts, if any, were demoted
    // to per-row evaluation, which the probe path applies). The probe column
    // is the first edge's attribute, matching the index_join_attr marking.
    if (!tp.index_scan && config_.use_column_index && tp.table_rows > 0) {
      const double ndv_probe = ndv_.Get(tp.relation_id, edges[0].t_attr);
      const double probed =
          entry.rows * static_cast<double>(tp.table_rows) / ndv_probe;
      const double cost = kProbeLog * entry.rows * Log2(ndv_probe) +
                          kIndexRow * probed + kOutRow * rows_out;
      if (cost < best.step_cost) {
        best.algo = JoinAlgo::kIndexNestedLoop;
        best.step_cost = cost;
        best.sig = entry.sig;
      }
    }

    // Sort-merge join: sort both sides by the key columns and merge. The
    // accumulated side's sort is skipped when it is already sorted by
    // exactly these columns (a previous sort-merge on the same keys) — the
    // "interesting order" this DP tracks. Output emits in key order, so the
    // operator is only on the menu when the block is reorder-safe.
    if (allow_sort_merge_) {
      const bool presorted = entry.sig == keycols;
      const double sort_acc =
          presorted ? 0.0 : kSortCmp * entry.rows * Log2(entry.rows);
      const double sort_new = kSortCmp * est_t * Log2(est_t);
      const double cost = ScanCost(tp) + sort_acc + sort_new +
                          kMergeRow * (entry.rows + est_t) + kOutRow * rows_out;
      if (config_.force_sort_merge || cost < best.step_cost) {
        best.algo = JoinAlgo::kSortMerge;
        best.step_cost = cost;
        best.sig = keycols;
      }
    }
    return best;
  }

  /// Extends `entry` (placed set `mask`) with table `t`.
  Entry Extend(const Entry& entry, uint32_t mask, int t) {
    StepCandidate step = BestStep(entry, mask, t);
    Entry next;
    next.cost = entry.cost + step.step_cost;
    next.rows = step.rows_out;
    next.order = entry.order;
    next.order.push_back(t);
    next.steps = entry.steps;
    next.steps.push_back(JoinStepEstimate{step.algo, next.rows, next.cost});
    next.sig = std::move(step.sig);
    return next;
  }

  Entry Initial(int t) const {
    Entry e;
    e.cost = ScanCost(tables_[t]);
    e.rows = base_rows_[t];
    e.order.push_back(t);
    e.steps.push_back(JoinStepEstimate{JoinAlgo::kNone, e.rows, e.cost});
    return e;
  }

 private:
  const std::vector<TablePlan>& tables_;
  const std::vector<PlannedEquiJoin>& edges_;
  const ExecConfig& config_;
  const bool allow_sort_merge_;
  NdvCache ndv_;
  std::vector<double> base_rows_;
};

/// Keeps, per distinct sort signature, only the cheapest entry (Selinger's
/// interesting-order pruning). Ties keep the incumbent, so earlier-explored
/// orders win deterministically.
void AddEntry(std::vector<Entry>& entries, Entry candidate) {
  for (Entry& e : entries) {
    if (e.sig != candidate.sig) continue;
    if (candidate.cost < e.cost) e = std::move(candidate);
    return;
  }
  entries.push_back(std::move(candidate));
}

JoinOrderPlan FinishPlan(Entry entry) {
  JoinOrderPlan plan;
  plan.total_cost = entry.cost;
  plan.output_rows = entry.rows;
  plan.order = std::move(entry.order);
  plan.steps = std::move(entry.steps);
  return plan;
}

}  // namespace

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kNone: return "";
    case JoinAlgo::kHash: return "hash";
    case JoinAlgo::kIndexNestedLoop: return "index_nl";
    case JoinAlgo::kSortMerge: return "sort_merge";
    case JoinAlgo::kNestedLoop: return "nested_loop";
  }
  return "";
}

double EstimateBaseRows(const TablePlan& tp) {
  double est = static_cast<double>(tp.estimated_rows);
  // `pushed` holds demoted sargable conjuncts (already reflected in the
  // estimate via `prunable`) plus conjuncts the index cannot answer; only
  // the latter get the default discount.
  const size_t non_sargable = tp.pushed.size() - tp.prunable.size();
  for (size_t i = 0; i < non_sargable; ++i) est *= kDefaultConjunctSel;
  return est;
}

JoinOrderPlan PlanJoinOrder(const storage::Database& db,
                            const std::vector<TablePlan>& tables,
                            const std::vector<PlannedEquiJoin>& edges,
                            const ExecConfig& config, bool allow_reorder,
                            bool allow_sort_merge) {
  const int n = static_cast<int>(tables.size());
  Planner planner(db, tables, edges, config, allow_sort_merge);
  if (n == 1 || !allow_reorder) {
    // Fixed order: fold in the given order, still costing each step.
    Entry entry = planner.Initial(0);
    uint32_t mask = 1;
    for (int t = 1; t < n; ++t) {
      entry = planner.Extend(entry, mask, t);
      mask |= uint32_t{1} << t;
    }
    return FinishPlan(std::move(entry));
  }

  if (n > config.cost_dp_max_tables) {
    // Greedy fallback: connected-first, smallest estimated input next (the
    // legacy reorder's shape); algorithms still chosen by cost per step.
    std::vector<char> placed(n, 0);
    int first = 0;
    for (int t = 1; t < n; ++t) {
      if (planner.base_rows(t) < planner.base_rows(first)) first = t;
    }
    placed[first] = 1;
    Entry entry = planner.Initial(first);
    uint32_t mask = uint32_t{1} << first;
    for (int step = 1; step < n; ++step) {
      int best = -1;
      bool best_connected = false;
      for (int t = 0; t < n; ++t) {
        if (placed[t]) continue;
        const bool connected = !planner.EdgesTo(t, mask).empty();
        const bool better =
            best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             planner.base_rows(t) < planner.base_rows(best));
        if (better) {
          best = t;
          best_connected = connected;
        }
      }
      entry = planner.Extend(entry, mask, best);
      placed[best] = 1;
      mask |= uint32_t{1} << best;
    }
    return FinishPlan(std::move(entry));
  }

  // Left-deep DP over subsets, keeping the cheapest entry per interesting
  // order within each subset. Masks are processed ascending: every superset
  // is numerically larger, so best[mask] is final when expanded.
  const uint32_t full = (uint32_t{1} << n) - 1;
  std::vector<std::vector<Entry>> best(full + 1);
  for (int t = 0; t < n; ++t) {
    best[uint32_t{1} << t].push_back(planner.Initial(t));
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (best[mask].empty()) continue;
    for (const Entry& entry : best[mask]) {
      for (int t = 0; t < n; ++t) {
        if ((mask >> t) & 1) continue;
        AddEntry(best[mask | (uint32_t{1} << t)],
                 planner.Extend(entry, mask, t));
      }
    }
  }
  int winner = 0;
  for (size_t i = 1; i < best[full].size(); ++i) {
    if (best[full][i].cost < best[full][winner].cost) {
      winner = static_cast<int>(i);
    }
  }
  return FinishPlan(std::move(best[full][winner]));
}

}  // namespace sfsql::exec
