#ifndef SFSQL_EXEC_COST_MODEL_H_
#define SFSQL_EXEC_COST_MODEL_H_

#include <vector>

#include "exec/access_path.h"
#include "storage/database.h"

namespace sfsql::exec {

/// Cost-based join planning over one query block (the tentpole of the
/// "million-row scale + cost-based planning" roadmap item).
///
/// Cardinalities come from two sources, most-exact first:
///   * per-table: the access-path planner's `estimated_rows` (exact column
///     index counts for sargable conjuncts, chunk-statistics survivors
///     otherwise), discounted by a default 1/3 per pushed non-sargable
///     conjunct;
///   * per equi-join edge: 1 / max(NDV_left, NDV_right) with NDV the
///     table-level distinct estimate (union of per-chunk linear-counting
///     sketches, see storage::ColumnStats), capped by each side's filtered
///     cardinality.
///
/// The order search is a left-deep DP over subsets (Selinger): each subset
/// keeps the cheapest plan per "interesting order" — the key columns the
/// intermediate result is sorted by — so a sort-merge join whose sort pays
/// off at a later step survives pruning. Above `cost_dp_max_tables` FROM
/// entries the DP degrades to the greedy connected-first order (the same
/// shape as the legacy reorder), with algorithms still chosen by cost.
///
/// Per fold step the model costs three algorithms and keeps the cheapest:
/// hash join (build new side, probe accumulated), index nested-loop join
/// (probe the join column's index per accumulated row; only for tables
/// without an IndexScan, mirroring the executor's eligibility rule), and
/// sort-merge (sort both sides by the key columns, skip the accumulated
/// side's sort when it is already sorted by them). Sort-merge changes the
/// emission order, so it is only offered when the block is reorder-safe.

/// One fold step's verdict: the algorithm placing table `order[i]` and the
/// cumulative estimated rows/cost after the step. steps[0].algo is kNone
/// (the first table is only materialized).
struct JoinStepEstimate {
  JoinAlgo algo = JoinAlgo::kNone;
  double rows = 0.0;  ///< cumulative estimated rows after this step
  double cost = 0.0;  ///< cumulative estimated cost after this step
};

/// The chosen fold order (indices into the input `tables` vector) plus the
/// per-step estimates, parallel to `order`.
struct JoinOrderPlan {
  std::vector<int> order;
  std::vector<JoinStepEstimate> steps;
  double total_cost = 0.0;
  double output_rows = 0.0;  ///< estimated join output (pre-residual)
};

/// Post-pushdown cardinality estimate of one table: the access-path
/// estimate discounted by a default selectivity per pushed conjunct the
/// index could not answer.
double EstimateBaseRows(const TablePlan& tp);

/// Plans the join order and per-step algorithms for `tables` (in FROM-slot
/// order: tables[i].from_index == i) connected by `edges`. `allow_reorder`
/// off forces the given order (algorithms and estimates are still
/// computed); `allow_sort_merge` off removes sort-merge from the menu (the
/// block is not provably emission-order-insensitive). The caller must hold
/// Database::ReadLock() — NDV aggregation reads the chunk directories.
JoinOrderPlan PlanJoinOrder(const storage::Database& db,
                            const std::vector<TablePlan>& tables,
                            const std::vector<PlannedEquiJoin>& edges,
                            const ExecConfig& config, bool allow_reorder,
                            bool allow_sort_merge);

}  // namespace sfsql::exec

#endif  // SFSQL_EXEC_COST_MODEL_H_
