#include "exec/executor.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/strings.h"
#include "exec/like.h"
#include "exec/task_pool.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace sfsql::exec {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::NameKind;
using sql::SelectStatement;
using sql::UnaryOp;
using storage::Row;
using storage::RowEq;
using storage::RowHash;
using storage::Value;

namespace {

// ---------------------------------------------------------------------------
// Schemas and environments
// ---------------------------------------------------------------------------

/// One FROM entry materialized into the block's flat tuple layout.
struct Slot {
  std::string binding_lower;  // alias or relation name, lower-cased
  int relation_id = -1;
  int offset = 0;  // first column of this slot in the flat row
  int width = 0;
};

struct BlockSchema {
  std::vector<Slot> slots;
  int width = 0;
  /// Slot visit order for star expansion. The planned fold may place slots
  /// in join order; stars must still expand in the original FROM order.
  /// Empty = slot order (the legacy fold, which never reorders).
  std::vector<int> star_order;
};

/// A row bound to its schema; environments chain outward for correlated
/// subqueries (innermost frame last).
struct Frame {
  const BlockSchema* schema;
  const Row* row;
};
using Env = std::vector<Frame>;

/// Where a column reference resolved to.
struct ColumnLoc {
  int frame = -1;   // index into Env, or -1 = the "local candidate" schema
  int column = -1;  // flat column index within the frame's row
};

// IsAggregateName / ContainsAggregate / SplitConjuncts live in
// exec/access_path.{h,cc} now — the planner classifies with the exact same
// rules the executor evaluates with.

/// Full-width row materialization of a chunked table — the legacy fold's
/// row-wise view of the columnar store. The planned fold copies only
/// referenced columns instead (see BuildFromRowsPlanned).
std::vector<Row> MaterializeAllRows(const storage::Table& table) {
  std::vector<Row> rows;
  rows.reserve(table.num_rows());
  for (size_t c = 0; c < table.num_chunks(); ++c) {
    const storage::Chunk& chunk = table.chunk(c);
    for (size_t o = 0; o < chunk.size(); ++o) {
      Row row;
      row.reserve(table.num_attrs());
      for (size_t a = 0; a < table.num_attrs(); ++a) {
        row.push_back(chunk.column(a)[o]);
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Block executor
// ---------------------------------------------------------------------------

class BlockExecutor {
 public:
  /// Non-null `info` receives the EXPLAIN view of the root block's plan
  /// (left empty when the planner falls back to the naive fold) — the access
  /// paths a query profile records — plus the estimated/actual join fold
  /// cardinalities for q-error measurement.
  /// Non-null `pool` with config->exec_threads > 1 turns on the morsel-
  /// parallel operators in the planned fold; null or exec_threads == 1 is
  /// the serial legacy path, bit-identical and thread-free.
  BlockExecutor(const storage::Database* db, const ExecConfig* config,
                ExecStats* stats, ExecInfo* info = nullptr,
                TaskPool* pool = nullptr)
      : db_(db), config_(config), stats_(stats), info_(info), pool_(pool) {}

  Result<QueryResult> ExecuteBlock(const SelectStatement& stmt, const Env& outer);

 private:
  // --- name resolution ---

  /// Looks up [relation.]attribute in `schema` only (no outer frames). Returns
  /// flat column index, kNotFound if absent, other errors on ambiguity.
  Result<int> ResolveInSchema(const sql::NameRef& relation,
                              const sql::NameRef& attribute,
                              const BlockSchema& schema) const {
    if (!attribute.exact() || (relation.specified() && !relation.exact())) {
      return Status::ExecutionError(
          StrCat("unresolved schema-free element '", relation.ToString(),
                 relation.specified() ? "." : "", attribute.ToString(),
                 "'; translate the query first"));
    }
    if (relation.specified()) {
      std::string want = ToLower(relation.name);
      for (const Slot& slot : schema.slots) {
        if (slot.binding_lower != want) continue;
        const catalog::Relation& rel = db_->catalog().relation(slot.relation_id);
        int idx = rel.AttributeIndex(attribute.name);
        if (idx < 0) {
          return Status::ExecutionError(
              StrCat("relation '", relation.name, "' has no attribute '",
                     attribute.name, "'"));
        }
        return slot.offset + idx;
      }
      return Status::NotFound(relation.name);
    }
    int found = -1;
    for (const Slot& slot : schema.slots) {
      const catalog::Relation& rel = db_->catalog().relation(slot.relation_id);
      int idx = rel.AttributeIndex(attribute.name);
      if (idx < 0) continue;
      if (found >= 0) {
        return Status::ExecutionError(
            StrCat("ambiguous attribute '", attribute.name, "'"));
      }
      found = slot.offset + idx;
    }
    if (found < 0) return Status::NotFound(attribute.name);
    return found;
  }

  /// Resolves against the environment, innermost frame first.
  Result<ColumnLoc> ResolveColumn(const sql::NameRef& relation,
                                  const sql::NameRef& attribute,
                                  const Env& env) const {
    for (int f = static_cast<int>(env.size()) - 1; f >= 0; --f) {
      Result<int> r = ResolveInSchema(relation, attribute, *env[f].schema);
      if (r.ok()) return ColumnLoc{f, *r};
      if (r.status().code() != StatusCode::kNotFound) return r.status();
    }
    return Status::ExecutionError(
        StrCat("cannot resolve column '",
               relation.specified() ? relation.ToString() + "." : "",
               attribute.ToString(), "'"));
  }

  /// True if every column in `e` resolves within `schema` alone and `e` has no
  /// subqueries (such predicates can be pushed into the join pipeline).
  bool ResolvesLocally(const Expr& e, const BlockSchema& schema) const {
    switch (e.kind) {
      case ExprKind::kColumnRef: {
        Result<int> r = ResolveInSchema(e.relation, e.attribute, schema);
        return r.ok();
      }
      case ExprKind::kInSubquery:
      case ExprKind::kExistsSubquery:
      case ExprKind::kScalarSubquery:
        return false;
      case ExprKind::kStar:
        return false;
      default:
        break;
    }
    if (e.lhs && !ResolvesLocally(*e.lhs, schema)) return false;
    if (e.rhs && !ResolvesLocally(*e.rhs, schema)) return false;
    for (const ExprPtr& a : e.args) {
      if (!ResolvesLocally(*a, schema)) return false;
    }
    return true;
  }

  // --- scalar evaluation (row mode) ---

  Result<Value> Eval(const Expr& e, const Env& env) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef: {
        SFSQL_ASSIGN_OR_RETURN(ColumnLoc loc,
                               ResolveColumn(e.relation, e.attribute, env));
        return (*env[loc.frame].row)[loc.column];
      }
      case ExprKind::kStar:
        return Status::ExecutionError("'*' is only valid in SELECT or COUNT(*)");
      case ExprKind::kUnary: {
        SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, env));
        if (e.uop == UnaryOp::kNot) {
          return Value::Bool(!Truthy(v));
        }
        if (v.is_null()) return Value::Null_();
        if (v.is_int()) return Value::Int(-v.AsInt());
        if (v.is_double()) return Value::Double(-v.AsDouble());
        return Status::TypeError("unary '-' needs a numeric operand");
      }
      case ExprKind::kBinary:
        return EvalBinary(e, env);
      case ExprKind::kFunctionCall:
        if (IsAggregateName(e.function_name)) {
          return Status::ExecutionError(
              StrCat("aggregate '", e.function_name,
                     "' used outside of an aggregated query block"));
        }
        return EvalScalarFunction(e, env);
      case ExprKind::kInList: {
        SFSQL_ASSIGN_OR_RETURN(Value subject, Eval(*e.lhs, env));
        if (subject.is_null()) return Value::Bool(e.negated ? true : false);
        for (const ExprPtr& item : e.args) {
          SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*item, env));
          if (subject.Equals(v)) return Value::Bool(!e.negated);
        }
        return Value::Bool(e.negated);
      }
      case ExprKind::kInSubquery: {
        SFSQL_ASSIGN_OR_RETURN(Value subject, Eval(*e.lhs, env));
        // Two-valued logic: a NULL subject matches nothing.
        if (subject.is_null()) return Value::Bool(e.negated);
        SFSQL_ASSIGN_OR_RETURN(QueryResult sub, ExecuteBlock(*e.subquery, env));
        if (sub.columns.size() != 1) {
          return Status::ExecutionError("IN subquery must return one column");
        }
        for (const Row& row : sub.rows) {
          if (subject.Equals(row[0])) return Value::Bool(!e.negated);
        }
        return Value::Bool(e.negated);
      }
      case ExprKind::kExistsSubquery: {
        SFSQL_ASSIGN_OR_RETURN(QueryResult sub, ExecuteBlock(*e.subquery, env));
        bool exists = !sub.rows.empty();
        return Value::Bool(e.negated ? !exists : exists);
      }
      case ExprKind::kScalarSubquery: {
        SFSQL_ASSIGN_OR_RETURN(QueryResult sub, ExecuteBlock(*e.subquery, env));
        if (sub.columns.size() != 1) {
          return Status::ExecutionError("scalar subquery must return one column");
        }
        if (sub.rows.empty()) return Value::Null_();
        if (sub.rows.size() > 1) {
          return Status::ExecutionError("scalar subquery returned several rows");
        }
        return sub.rows[0][0];
      }
      case ExprKind::kBetween: {
        SFSQL_ASSIGN_OR_RETURN(Value subject, Eval(*e.lhs, env));
        SFSQL_ASSIGN_OR_RETURN(Value low, Eval(*e.args[0], env));
        SFSQL_ASSIGN_OR_RETURN(Value high, Eval(*e.args[1], env));
        if (subject.is_null() || low.is_null() || high.is_null()) {
          return Value::Bool(false);
        }
        bool in = subject.Compare(low) >= 0 && subject.Compare(high) <= 0;
        return Value::Bool(e.negated ? !in : in);
      }
      case ExprKind::kIsNull: {
        SFSQL_ASSIGN_OR_RETURN(Value subject, Eval(*e.lhs, env));
        bool is_null = subject.is_null();
        return Value::Bool(e.negated ? !is_null : is_null);
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  static bool Truthy(const Value& v) {
    if (v.is_null()) return false;
    if (v.is_bool()) return v.AsBool();
    if (v.is_int()) return v.AsInt() != 0;
    if (v.is_double()) return v.AsDouble() != 0.0;
    return !v.AsString().empty();
  }

  Result<Value> EvalBinary(const Expr& e, const Env& env) {
    if (e.bop == BinaryOp::kAnd) {
      SFSQL_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, env));
      if (!Truthy(a)) return Value::Bool(false);
      SFSQL_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, env));
      return Value::Bool(Truthy(b));
    }
    if (e.bop == BinaryOp::kOr) {
      SFSQL_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, env));
      if (Truthy(a)) return Value::Bool(true);
      SFSQL_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, env));
      return Value::Bool(Truthy(b));
    }
    SFSQL_ASSIGN_OR_RETURN(Value a, Eval(*e.lhs, env));
    SFSQL_ASSIGN_OR_RETURN(Value b, Eval(*e.rhs, env));
    if (sql::IsComparisonOp(e.bop)) {
      if (a.is_null() || b.is_null()) return Value::Bool(false);
      if (e.bop == BinaryOp::kLike) {
        if (!a.is_string() || !b.is_string()) {
          return Status::TypeError("LIKE needs string operands");
        }
        return Value::Bool(LikeMatch(a.AsString(), b.AsString(),
                                     LikeEscapeChar(e.like_escape)));
      }
      if (e.bop == BinaryOp::kEq) return Value::Bool(a.Equals(b));
      if (e.bop == BinaryOp::kNe) return Value::Bool(!a.Equals(b));
      bool comparable = (a.is_numeric() && b.is_numeric()) || a.type() == b.type();
      if (!comparable) {
        return Status::TypeError(
            StrCat("cannot compare ", catalog::ValueTypeToString(a.type()),
                   " with ", catalog::ValueTypeToString(b.type())));
      }
      int cmp = a.Compare(b);
      switch (e.bop) {
        case BinaryOp::kLt: return Value::Bool(cmp < 0);
        case BinaryOp::kLe: return Value::Bool(cmp <= 0);
        case BinaryOp::kGt: return Value::Bool(cmp > 0);
        case BinaryOp::kGe: return Value::Bool(cmp >= 0);
        default: break;
      }
    }
    // Arithmetic.
    if (a.is_null() || b.is_null()) return Value::Null_();
    if (!a.is_numeric() || !b.is_numeric()) {
      if (e.bop == BinaryOp::kAdd && a.is_string() && b.is_string()) {
        return Value::String(a.AsString() + b.AsString());
      }
      return Status::TypeError("arithmetic needs numeric operands");
    }
    bool ints = a.is_int() && b.is_int();
    switch (e.bop) {
      case BinaryOp::kAdd:
        return ints ? Value::Int(a.AsInt() + b.AsInt())
                    : Value::Double(a.AsDouble() + b.AsDouble());
      case BinaryOp::kSub:
        return ints ? Value::Int(a.AsInt() - b.AsInt())
                    : Value::Double(a.AsDouble() - b.AsDouble());
      case BinaryOp::kMul:
        return ints ? Value::Int(a.AsInt() * b.AsInt())
                    : Value::Double(a.AsDouble() * b.AsDouble());
      case BinaryOp::kDiv:
        if (b.AsDouble() == 0.0) return Value::Null_();
        return ints ? Value::Int(a.AsInt() / b.AsInt())
                    : Value::Double(a.AsDouble() / b.AsDouble());
      case BinaryOp::kMod:
        if (!ints || b.AsInt() == 0) {
          return ints ? Value::Null_()
                      : Result<Value>(Status::TypeError("'%' needs integers"));
        }
        return Value::Int(a.AsInt() % b.AsInt());
      default:
        break;
    }
    return Status::Internal("unhandled binary operator");
  }

  Result<Value> EvalScalarFunction(const Expr& e, const Env& env) {
    // Small scalar function library; extend as needed.
    if (EqualsIgnoreCase(e.function_name, "abs") && e.args.size() == 1) {
      SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0], env));
      if (v.is_null()) return v;
      if (v.is_int()) return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
      if (v.is_double()) {
        return Value::Double(v.AsDouble() < 0 ? -v.AsDouble() : v.AsDouble());
      }
      return Status::TypeError("abs needs a numeric argument");
    }
    if (EqualsIgnoreCase(e.function_name, "lower") && e.args.size() == 1) {
      SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0], env));
      if (v.is_null()) return v;
      if (!v.is_string()) return Status::TypeError("lower needs a string");
      return Value::String(ToLower(v.AsString()));
    }
    if (EqualsIgnoreCase(e.function_name, "upper") && e.args.size() == 1) {
      SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0], env));
      if (v.is_null()) return v;
      if (!v.is_string()) return Status::TypeError("upper needs a string");
      return Value::String(ToUpper(v.AsString()));
    }
    if (EqualsIgnoreCase(e.function_name, "length") && e.args.size() == 1) {
      SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0], env));
      if (v.is_null()) return v;
      if (!v.is_string()) return Status::TypeError("length needs a string");
      return Value::Int(static_cast<int64_t>(v.AsString().size()));
    }
    return Status::ExecutionError(
        StrCat("unknown function '", e.function_name, "'"));
  }

  // --- aggregation ---

  struct Group {
    Row key;
    std::vector<const Row*> rows;
  };

  Result<Value> ComputeAggregate(const Expr& call, const Group& group,
                                 const BlockSchema& schema, const Env& outer) {
    const std::string name = ToLower(call.function_name);
    if (call.args.size() != 1) {
      return Status::ExecutionError(
          StrCat("aggregate '", call.function_name, "' takes one argument"));
    }
    if (name == "count" && call.args[0]->kind == ExprKind::kStar) {
      return Value::Int(static_cast<int64_t>(group.rows.size()));
    }
    std::vector<Value> values;
    values.reserve(group.rows.size());
    for (const Row* row : group.rows) {
      Env env = outer;
      env.push_back(Frame{&schema, row});
      SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*call.args[0], env));
      if (!v.is_null()) values.push_back(std::move(v));
    }
    if (call.distinct) {
      std::unordered_set<Row, RowHash, RowEq> seen;
      std::vector<Value> unique;
      for (Value& v : values) {
        Row key{v};
        if (seen.insert(key).second) unique.push_back(std::move(v));
      }
      values = std::move(unique);
    }
    if (name == "count") return Value::Int(static_cast<int64_t>(values.size()));
    if (values.empty()) return Value::Null_();
    if (name == "min" || name == "max") {
      Value best = values[0];
      for (size_t i = 1; i < values.size(); ++i) {
        int cmp = values[i].Compare(best);
        if ((name == "min" && cmp < 0) || (name == "max" && cmp > 0)) {
          best = values[i];
        }
      }
      return best;
    }
    // sum / avg
    bool all_int = true;
    double dsum = 0;
    int64_t isum = 0;
    for (const Value& v : values) {
      if (!v.is_numeric()) {
        return Status::TypeError(StrCat(name, " needs numeric values"));
      }
      if (!v.is_int()) all_int = false;
      dsum += v.AsDouble();
      if (v.is_int()) isum += v.AsInt();
    }
    if (name == "sum") {
      return all_int ? Value::Int(isum) : Value::Double(dsum);
    }
    return Value::Double(dsum / static_cast<double>(values.size()));
  }

  /// Evaluates a select/having/order expression in group mode: group-by
  /// expressions are matched textually, aggregates computed over the group, and
  /// bare columns fall back to the group's representative (first) row.
  Result<Value> EvalGrouped(const Expr& e, const Group& group,
                            const std::vector<std::string>& group_by_text,
                            const std::vector<Value>& group_key,
                            const BlockSchema& schema, const Env& outer) {
    std::string text = sql::PrintExpr(e);
    for (size_t i = 0; i < group_by_text.size(); ++i) {
      if (text == group_by_text[i]) return group_key[i];
    }
    if (e.kind == ExprKind::kFunctionCall && IsAggregateName(e.function_name)) {
      return ComputeAggregate(e, group, schema, outer);
    }
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef: {
        if (group.rows.empty()) return Value::Null_();
        Env env = outer;
        env.push_back(Frame{&schema, group.rows[0]});
        return Eval(e, env);
      }
      case ExprKind::kUnary: {
        SFSQL_ASSIGN_OR_RETURN(
            Value v, EvalGrouped(*e.lhs, group, group_by_text, group_key, schema,
                                 outer));
        if (e.uop == UnaryOp::kNot) return Value::Bool(!Truthy(v));
        if (v.is_null()) return v;
        if (v.is_int()) return Value::Int(-v.AsInt());
        if (v.is_double()) return Value::Double(-v.AsDouble());
        return Status::TypeError("unary '-' needs a numeric operand");
      }
      case ExprKind::kBinary: {
        // Rebuild a tiny two-literal expression and reuse scalar eval.
        SFSQL_ASSIGN_OR_RETURN(
            Value a, EvalGrouped(*e.lhs, group, group_by_text, group_key, schema,
                                 outer));
        SFSQL_ASSIGN_OR_RETURN(
            Value b, EvalGrouped(*e.rhs, group, group_by_text, group_key, schema,
                                 outer));
        ExprPtr tmp = Expr::Binary(e.bop, Expr::Literal(std::move(a)),
                                   Expr::Literal(std::move(b)));
        return Eval(*tmp, outer);
      }
      default: {
        // Subqueries and other constructs: evaluate against the representative
        // row (correlated aggregate subqueries over groups are out of scope).
        Env env = outer;
        if (!group.rows.empty()) env.push_back(Frame{&schema, group.rows[0]});
        return Eval(e, env);
      }
    }
  }

  // --- join pipeline ---

  Result<std::vector<Row>> BuildFromRows(const SelectStatement& stmt,
                                         BlockSchema& schema, const Env& outer,
                                         std::vector<const Expr*>& conjuncts,
                                         std::vector<bool>& conjunct_used);

  Result<std::vector<Row>> BuildFromRowsPlanned(
      const BlockPlan& plan, BlockSchema& schema, const Env& outer,
      const std::vector<const Expr*>& conjuncts,
      std::vector<bool>& conjunct_used);

  /// The cached access-path plan for a block, keyed by statement identity —
  /// correlated subqueries re-execute the same SelectStatement many times,
  /// and plans are environment-independent (sargable operands are literals).
  /// Cached row ids stay valid because one BlockExecutor lives within one
  /// Execute, which holds the database read lock throughout.
  const BlockPlan& GetPlan(const SelectStatement& stmt,
                           const std::vector<const Expr*>& conjuncts) {
    auto it = plans_.find(&stmt);
    if (it == plans_.end()) {
      it = plans_.emplace(&stmt, PlanBlock(*db_, stmt, conjuncts, *config_))
               .first;
    }
    return it->second;
  }

  // --- referenced-column analysis ---
  //
  // The planned fold copies only columns the statement can read out of the
  // chunks; everything else stays a NULL placeholder in the flat row. The
  // analysis is conservative and name-based over the whole root statement
  // (subqueries included): a bare name can resolve into any slot carrying
  // it and correlated refs cross blocks, so per-binding precision is not
  // attempted. A star or a non-exact name forces full materialization.

  void CollectReferences(const SelectStatement& stmt) {
    std::function<void(const Expr&)> walk = [&](const Expr& e) {
      if (refs_all_) return;
      switch (e.kind) {
        case ExprKind::kStar:
          refs_all_ = true;
          return;
        case ExprKind::kColumnRef:
          if (!e.attribute.exact()) {
            refs_all_ = true;
            return;
          }
          ref_names_.insert(ToLower(e.attribute.name));
          break;
        default:
          break;
      }
      if (e.lhs) walk(*e.lhs);
      if (e.rhs) walk(*e.rhs);
      for (const ExprPtr& a : e.args) walk(*a);
      if (e.subquery) CollectReferences(*e.subquery);
    };
    for (const sql::SelectItem& item : stmt.select_items) walk(*item.expr);
    if (stmt.where) walk(*stmt.where);
    for (const ExprPtr& g : stmt.group_by) walk(*g);
    if (stmt.having) walk(*stmt.having);
    for (const sql::OrderItem& o : stmt.order_by) walk(*o.expr);
  }

  /// Per-attribute "must materialize" flags for one relation.
  const std::vector<char>& ReferencedAttrs(int relation_id) {
    auto it = referenced_cache_.find(relation_id);
    if (it != referenced_cache_.end()) return it->second;
    const catalog::Relation& rel = db_->catalog().relation(relation_id);
    std::vector<char> wanted(rel.attributes.size(), 1);
    if (!refs_all_) {
      for (size_t a = 0; a < rel.attributes.size(); ++a) {
        wanted[a] = ref_names_.count(ToLower(rel.attributes[a].name)) ? 1 : 0;
      }
    }
    return referenced_cache_.emplace(relation_id, std::move(wanted))
        .first->second;
  }

  // --- morsel-parallel row loops ---
  //
  // The three hot operators of the planned fold (scan + pushed filter, hash
  // probe, index nested-loop probe) all reduce to "run body(b, e) over [0, n)
  // and append body's output rows in range order". RowLoop runs that shape on
  // the task pool when parallelism is on and the input is big enough, and as
  // one plain call otherwise — so exec_threads == 1 takes the exact legacy
  // code path. Parallel invariants:
  //  * outputs and stats go to per-morsel slots, stitched/merged in morsel
  //    order after the barrier — results are bit-identical to serial and no
  //    hot-path counter is shared between workers;
  //  * bodies only evaluate planner-pushed conjuncts and join filters, which
  //    are subquery-free by construction (the planner routes any conjunct
  //    containing a subquery or star to the residual filter), so Eval never
  //    recurses into ExecuteBlock — and never mutates this object — from a
  //    worker thread;
  //  * workers run strictly inside the Database::ReadLock the caller's
  //    Execute holds (they never lock), so the staleness contract is the
  //    serial one;
  //  * on error, the lowest-indexed failing morsel's status is returned —
  //    the same error serial execution would have hit first.
  Status RowLoop(size_t n, size_t grain,
                 const std::function<Status(size_t, size_t, std::vector<Row>&,
                                            ExecStats&)>& body,
                 std::vector<Row>& out) {
    if (pool_ == nullptr || config_->exec_threads <= 1 || n <= grain ||
        grain == 0) {
      return body(0, n, out, *stats_);
    }
    const size_t morsels = (n + grain - 1) / grain;
    std::vector<std::vector<Row>> outs(morsels);
    std::vector<Status> statuses(morsels);
    std::vector<ExecStats> deltas(morsels);
    pool_->ParallelFor(n, grain, [&](size_t b, size_t e) {
      const size_t m = b / grain;
      statuses[m] = body(b, e, outs[m], deltas[m]);
    });
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    size_t total = out.size();
    for (const std::vector<Row>& o : outs) total += o.size();
    out.reserve(total);
    for (size_t m = 0; m < morsels; ++m) {
      for (Row& r : outs[m]) out.push_back(std::move(r));
      MergeStats(*stats_, deltas[m]);
    }
    return Status::OK();
  }

  /// Morsel size for the parallel row loops (scans round up to chunks).
  size_t Grain() const {
    return config_->morsel_grain != 0 ? config_->morsel_grain : 4096;
  }

  bool ParallelEnabled() const {
    return pool_ != nullptr && config_->exec_threads > 1;
  }

  static void MergeStats(ExecStats& into, const ExecStats& d) {
    into.index_scans += d.index_scans;
    into.table_scans += d.table_scans;
    into.index_joins += d.index_joins;
    into.hash_joins += d.hash_joins;
    into.sort_merge_joins += d.sort_merge_joins;
    into.merge_sorts_skipped += d.merge_sorts_skipped;
    into.rows_pruned += d.rows_pruned;
    into.pushed_predicates += d.pushed_predicates;
    into.chunks_pruned += d.chunks_pruned;
    into.rows_scanned += d.rows_scanned;
  }

  const storage::Database* db_;
  const ExecConfig* config_;
  ExecStats* stats_;
  ExecInfo* info_;
  TaskPool* pool_ = nullptr;
  std::unordered_map<const SelectStatement*, BlockPlan> plans_;
  bool analyzed_ = false;
  bool refs_all_ = false;
  std::unordered_set<std::string> ref_names_;
  std::unordered_map<int, std::vector<char>> referenced_cache_;
};

Result<std::vector<Row>> BlockExecutor::BuildFromRows(
    const SelectStatement& stmt, BlockSchema& schema, const Env& outer,
    std::vector<const Expr*>& conjuncts, std::vector<bool>& conjunct_used) {
  std::vector<Row> rows;
  rows.push_back(Row{});  // one empty row: identity for the fold below

  stats_->table_scans += stmt.from.size();
  for (const sql::TableRef& ref : stmt.from) {
    if (!ref.relation.exact()) {
      return Status::ExecutionError(
          StrCat("FROM contains unresolved relation '", ref.relation.ToString(),
                 "'; translate the query first"));
    }
    SFSQL_ASSIGN_OR_RETURN(int rel_id,
                           db_->catalog().FindRelation(ref.relation.name));
    Slot slot;
    slot.binding_lower = ToLower(ref.BindingName());
    slot.relation_id = rel_id;
    slot.offset = schema.width;
    slot.width = static_cast<int>(db_->catalog().relation(rel_id).attributes.size());
    for (const Slot& existing : schema.slots) {
      if (existing.binding_lower == slot.binding_lower) {
        return Status::ExecutionError(
            StrCat("duplicate FROM binding '", ref.BindingName(), "'"));
      }
    }

    BlockSchema next = schema;
    next.slots.push_back(slot);
    next.width += slot.width;

    // Classify so-far-unused conjuncts against the grown schema.
    BlockSchema new_only;
    new_only.slots = {slot};
    new_only.width = slot.width;
    // For resolution inside new_only the offset must be 0-based.
    new_only.slots[0].offset = 0;

    struct EquiKey {
      int existing_col;  // flat index in `schema`
      int new_col;       // attribute index within the new slot
    };
    std::vector<EquiKey> keys;
    std::vector<const Expr*> pushable;
    for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
      if (conjunct_used[ci]) continue;
      const Expr* c = conjuncts[ci];
      if (!ResolvesLocally(*c, next)) continue;
      // Equi-join key? col = col with sides split across old schema / new slot.
      if (c->kind == ExprKind::kBinary && c->bop == BinaryOp::kEq &&
          c->lhs->kind == ExprKind::kColumnRef &&
          c->rhs->kind == ExprKind::kColumnRef) {
        Result<int> l_old = ResolveInSchema(c->lhs->relation, c->lhs->attribute,
                                            schema);
        Result<int> r_old = ResolveInSchema(c->rhs->relation, c->rhs->attribute,
                                            schema);
        Result<int> l_new = ResolveInSchema(c->lhs->relation, c->lhs->attribute,
                                            new_only);
        Result<int> r_new = ResolveInSchema(c->rhs->relation, c->rhs->attribute,
                                            new_only);
        if (l_old.ok() && r_new.ok() && !schema.slots.empty()) {
          keys.push_back(EquiKey{*l_old, *r_new});
          conjunct_used[ci] = true;
          continue;
        }
        if (r_old.ok() && l_new.ok() && !schema.slots.empty()) {
          keys.push_back(EquiKey{*r_old, *l_new});
          conjunct_used[ci] = true;
          continue;
        }
      }
      pushable.push_back(c);
      conjunct_used[ci] = true;
    }

    const std::vector<Row> table_rows = MaterializeAllRows(db_->table(rel_id));
    stats_->rows_scanned += table_rows.size();
    std::vector<Row> joined;

    auto emit_if_passes = [&](const Row& base, const Row& extra) -> Status {
      Row combined;
      combined.reserve(base.size() + extra.size());
      combined.insert(combined.end(), base.begin(), base.end());
      combined.insert(combined.end(), extra.begin(), extra.end());
      Env env = outer;
      env.push_back(Frame{&next, &combined});
      for (const Expr* p : pushable) {
        SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*p, env));
        if (!Truthy(v)) return Status::OK();
      }
      joined.push_back(std::move(combined));
      return Status::OK();
    };

    if (!keys.empty()) {
      // Hash join: build on the new table, probe with existing rows.
      std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> build;
      for (const Row& trow : table_rows) {
        Row key;
        key.reserve(keys.size());
        bool has_null = false;
        for (const EquiKey& k : keys) {
          if (trow[k.new_col].is_null()) has_null = true;
          key.push_back(trow[k.new_col]);
        }
        if (has_null) continue;  // NULL keys never join
        build[std::move(key)].push_back(&trow);
      }
      for (const Row& base : rows) {
        Row probe;
        probe.reserve(keys.size());
        bool has_null = false;
        for (const EquiKey& k : keys) {
          if (base[k.existing_col].is_null()) has_null = true;
          probe.push_back(base[k.existing_col]);
        }
        if (has_null) continue;
        auto it = build.find(probe);
        if (it == build.end()) continue;
        for (const Row* trow : it->second) {
          SFSQL_RETURN_IF_ERROR(emit_if_passes(base, *trow));
        }
      }
    } else {
      for (const Row& base : rows) {
        for (const Row& trow : table_rows) {
          SFSQL_RETURN_IF_ERROR(emit_if_passes(base, trow));
        }
      }
    }

    schema = std::move(next);
    rows = std::move(joined);
  }
  return rows;
}

Result<std::vector<Row>> BlockExecutor::BuildFromRowsPlanned(
    const BlockPlan& plan, BlockSchema& schema, const Env& outer,
    const std::vector<const Expr*>& conjuncts,
    std::vector<bool>& conjunct_used) {
  // Everything the plan routed below or into the join is consumed here; the
  // residual conjuncts stay unused for the caller's post-join filter.
  for (const TablePlan& tp : plan.tables) {
    for (int ci : tp.pushed) conjunct_used[ci] = true;
    for (const SargablePredicate& p : tp.sargable) {
      conjunct_used[p.conjunct] = true;
    }
  }
  for (const PlannedEquiJoin& e : plan.equi_joins) {
    conjunct_used[e.conjunct] = true;
  }
  for (const PlannedJoinFilter& f : plan.join_filters) {
    conjunct_used[f.conjunct] = true;
  }

  // Single-slot frame for evaluating a table's pushed conjuncts against one
  // base row (instead of once per joined tuple).
  const size_t n = plan.tables.size();
  auto slot_for = [&](const TablePlan& tp, int offset) {
    Slot slot;
    slot.binding_lower = tp.binding_lower;
    slot.relation_id = tp.relation_id;
    slot.offset = offset;
    slot.width = static_cast<int>(
        db_->catalog().relation(tp.relation_id).attributes.size());
    return slot;
  };
  auto passes_pushed = [&](const TablePlan& tp, const BlockSchema& local,
                           const Row& row) -> Result<bool> {
    Env env = outer;
    env.push_back(Frame{&local, &row});
    for (int ci : tp.pushed) {
      SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*conjuncts[ci], env));
      if (!Truthy(v)) return false;
    }
    return true;
  };

  // Stage 1, run lazily at each fold step: the filtered base-row list of one
  // table, materialized column-at-a-time out of the chunks — only columns the
  // statement can read are copied; the rest stay NULL placeholders. An
  // IndexScan starts from the plan's row ids (sargable conjuncts already
  // satisfied); a scan walks the chunks, skipping every chunk the plan's
  // statistics pass pruned. Either way the pushed predicates run once per
  // base row. Tables answered by an index nested-loop join skip this.
  auto materialize = [&](const TablePlan& tp) -> Result<std::vector<Row>> {
    const storage::Table& table = db_->table(tp.relation_id);
    const std::vector<char>& wanted = ReferencedAttrs(tp.relation_id);
    const size_t width = table.num_attrs();
    BlockSchema local;
    local.slots.push_back(slot_for(tp, 0));
    local.width = local.slots[0].width;
    std::vector<Row> base;
    if (tp.index_scan) {
      ++stats_->index_scans;
      stats_->rows_scanned += tp.row_ids.size();
      auto scan_ids = [&](size_t b, size_t e, std::vector<Row>& out,
                          ExecStats&) -> Status {
        out.reserve(out.size() + (e - b));
        for (size_t i = b; i < e; ++i) {
          Row row(width);
          for (size_t a = 0; a < width; ++a) {
            if (wanted[a]) row[a] = table.at(tp.row_ids[i], a);
          }
          SFSQL_ASSIGN_OR_RETURN(bool ok, passes_pushed(tp, local, row));
          if (ok) out.push_back(std::move(row));
        }
        return Status::OK();
      };
      SFSQL_RETURN_IF_ERROR(RowLoop(tp.row_ids.size(), Grain(), scan_ids, base));
    } else {
      ++stats_->table_scans;
      // Morsels are whole chunks (a grain below chunk_capacity rounds up to
      // one chunk per morsel); workers prune locally against the plan's
      // per-chunk verdicts and the row runs concatenate in chunk order.
      auto scan_chunks = [&](size_t cb, size_t ce, std::vector<Row>& out,
                             ExecStats& st) -> Status {
        for (size_t c = cb; c < ce; ++c) {
          if (c < tp.pruned_chunks.size() && tp.pruned_chunks[c]) {
            ++st.chunks_pruned;
            continue;
          }
          const storage::Chunk& chunk = table.chunk(c);
          st.rows_scanned += chunk.size();
          for (size_t o = 0; o < chunk.size(); ++o) {
            Row row(width);
            for (size_t a = 0; a < width; ++a) {
              if (wanted[a]) row[a] = chunk.column(a)[o];
            }
            SFSQL_ASSIGN_OR_RETURN(bool ok, passes_pushed(tp, local, row));
            if (ok) out.push_back(std::move(row));
          }
        }
        return Status::OK();
      };
      const size_t chunks_per_morsel =
          std::max<size_t>(1, Grain() / table.chunk_capacity());
      SFSQL_RETURN_IF_ERROR(
          RowLoop(table.num_chunks(), chunks_per_morsel, scan_chunks, base));
    }
    stats_->rows_pruned += table.num_rows() - base.size();
    stats_->pushed_predicates += tp.pushed.size() + tp.sargable.size();
    return base;
  };

  // Stage 2: fold in plan order — hash joins on the planned equi edges, join
  // filters evaluated at the step where their last table is placed.
  std::vector<int> step_of(n, -1);    // FROM position -> fold step
  std::vector<int> offset_of(n, -1);  // FROM position -> flat offset
  for (size_t t = 0; t < n; ++t) {
    step_of[plan.tables[t].from_index] = static_cast<int>(t);
  }
  std::vector<std::vector<const Expr*>> step_filters(n);
  for (const PlannedJoinFilter& f : plan.join_filters) {
    int last = 0;
    for (int tab : f.tables) last = std::max(last, step_of[tab]);
    step_filters[last].push_back(conjuncts[f.conjunct]);
  }

  std::vector<Row> rows;
  rows.push_back(Row{});  // fold identity, as in the legacy path
  // Flat columns the accumulated rows are currently sorted by (the output of
  // a sort-merge step). Hash, index nested-loop, and nested-loop steps all
  // iterate the accumulated side in order and emit per-base-row blocks, so
  // they preserve it; a later sort-merge on exactly these columns can skip
  // its accumulated-side sort.
  std::vector<int> sorted_cols;
  for (size_t t = 0; t < n; ++t) {
    const TablePlan& tp = plan.tables[t];
    Slot slot;
    slot.binding_lower = tp.binding_lower;
    slot.relation_id = tp.relation_id;
    slot.offset = schema.width;
    slot.width = static_cast<int>(
        db_->catalog().relation(tp.relation_id).attributes.size());
    BlockSchema next = schema;
    next.slots.push_back(slot);
    next.width += slot.width;
    offset_of[tp.from_index] = slot.offset;

    struct EquiKey {
      int existing_col;  // flat index in the accumulated schema
      int new_col;       // attribute index within the new slot
    };
    std::vector<EquiKey> keys;
    for (const PlannedEquiJoin& e : plan.equi_joins) {
      const int ts = static_cast<int>(t);
      if (step_of[e.left_from] == ts && step_of[e.right_from] < ts) {
        keys.push_back(
            EquiKey{offset_of[e.right_from] + e.right_attr, e.left_attr});
      } else if (step_of[e.right_from] == ts && step_of[e.left_from] < ts) {
        keys.push_back(
            EquiKey{offset_of[e.left_from] + e.left_attr, e.right_attr});
      }
    }
    const std::vector<const Expr*>& filters = step_filters[t];

    std::vector<Row> joined;
    // `out`-parameterized so the parallel probe loops can emit into their
    // morsel's private vector; the join filters are subquery-free (see
    // RowLoop), so concurrent evaluation is safe.
    auto emit_row = [&](const Row& base, const Row& extra,
                        std::vector<Row>& out) -> Status {
      Row combined;
      combined.reserve(base.size() + extra.size());
      combined.insert(combined.end(), base.begin(), base.end());
      combined.insert(combined.end(), extra.begin(), extra.end());
      Env env = outer;
      env.push_back(Frame{&next, &combined});
      for (const Expr* p : filters) {
        SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*p, env));
        if (!Truthy(v)) return Status::OK();
      }
      out.push_back(std::move(combined));
      return Status::OK();
    };
    auto emit_if_passes = [&](const Row& base, const Row& extra) -> Status {
      return emit_row(base, extra, joined);
    };

    // Index nested-loop join: when the accumulated side is small relative to
    // the table, probe the join column's index once per accumulated row
    // instead of scanning + hash-building the whole table. Probe row ids come
    // back ascending, so emission order matches the hash join exactly (per
    // accumulated row, matches in table order). `=` probes use Value::Compare
    // equality, which coincides with the hash join's Equals for non-nulls.
    const storage::Table& table = db_->table(tp.relation_id);
    JoinAlgo algo = tp.join_algo;
    if (algo == JoinAlgo::kNone) {
      // No planned choice (greedy/baseline path): the legacy runtime
      // heuristic probes the index when the accumulated side is small.
      if (tp.index_join_attr >= 0 && !keys.empty() &&
          rows.size() * 4 <= table.num_rows()) {
        algo = JoinAlgo::kIndexNestedLoop;
      }
    } else if (algo == JoinAlgo::kIndexNestedLoop &&
               (tp.index_join_attr < 0 || keys.empty())) {
      algo = JoinAlgo::kHash;  // planned probe column unavailable; degrade
    }
    if (algo == JoinAlgo::kIndexNestedLoop) {
      ++stats_->index_joins;
      stats_->pushed_predicates += tp.pushed.size();
      const storage::ColumnIndex* idx =
          db_->ColumnIndexFor(tp.relation_id, tp.index_join_attr);
      const std::vector<char>& wanted = ReferencedAttrs(tp.relation_id);
      const size_t width = table.num_attrs();
      BlockSchema local;
      local.slots.push_back(slot_for(tp, 0));
      local.width = local.slots[0].width;
      size_t probe_key = 0;
      while (keys[probe_key].new_col != tp.index_join_attr) ++probe_key;
      // Probe morsels run in parallel over the accumulated rows; per probe
      // row the index returns ids ascending, so stitching morsels in order
      // reproduces the serial emission order exactly. `idx` was fetched above
      // on this thread (ColumnIndexFor may lazily build under a mutex);
      // workers only call its const read API.
      auto probe_index = [&](size_t b, size_t e, std::vector<Row>& out,
                             ExecStats& st) -> Status {
        for (size_t ri = b; ri < e; ++ri) {
          const Row& base = rows[ri];
          bool has_null = false;
          for (const EquiKey& k : keys) {
            if (base[k.existing_col].is_null()) has_null = true;
          }
          if (has_null) continue;
          for (uint32_t id :
               idx->RowsSatisfying("=", base[keys[probe_key].existing_col])) {
            ++st.rows_scanned;
            Row trow(width);
            for (size_t a = 0; a < width; ++a) {
              if (wanted[a]) trow[a] = table.at(id, a);
            }
            bool match = true;
            for (size_t k = 0; k < keys.size() && match; ++k) {
              if (k == probe_key) continue;
              const Value& v = trow[keys[k].new_col];
              match = !v.is_null() && v.Equals(base[keys[k].existing_col]);
            }
            if (!match) continue;
            SFSQL_ASSIGN_OR_RETURN(bool ok, passes_pushed(tp, local, trow));
            if (!ok) continue;
            SFSQL_RETURN_IF_ERROR(emit_row(base, trow, out));
          }
        }
        return Status::OK();
      };
      SFSQL_RETURN_IF_ERROR(RowLoop(rows.size(), Grain(), probe_index, joined));
      schema = std::move(next);
      rows = std::move(joined);
      continue;
    }

    SFSQL_ASSIGN_OR_RETURN(std::vector<Row> base_rows, materialize(tp));
    if (!keys.empty() && algo == JoinAlgo::kSortMerge) {
      // Sort-merge join: order both sides by the key columns and walk equal-
      // key groups with two pointers. Value::Compare is a total order whose
      // zero coincides with the hash join's key equality (int/double coerce
      // in both; distinct type ranks never compare equal), so the produced
      // multiset is identical to the hash join's. NULL keys never join.
      // Output emits in key order — the planner only chooses this operator
      // for reorder-safe blocks.
      ++stats_->sort_merge_joins;
      std::vector<int> left_cols;
      left_cols.reserve(keys.size());
      for (const EquiKey& k : keys) left_cols.push_back(k.existing_col);
      std::vector<uint32_t> lidx;
      lidx.reserve(rows.size());
      for (uint32_t i = 0; i < rows.size(); ++i) {
        bool has_null = false;
        for (const EquiKey& k : keys) {
          if (rows[i][k.existing_col].is_null()) has_null = true;
        }
        if (!has_null) lidx.push_back(i);
      }
      std::vector<uint32_t> ridx;
      ridx.reserve(base_rows.size());
      for (uint32_t i = 0; i < base_rows.size(); ++i) {
        bool has_null = false;
        for (const EquiKey& k : keys) {
          if (base_rows[i][k.new_col].is_null()) has_null = true;
        }
        if (!has_null) ridx.push_back(i);
      }
      auto cmp_lr = [&](uint32_t l, uint32_t r) {
        for (const EquiKey& k : keys) {
          int c = rows[l][k.existing_col].Compare(base_rows[r][k.new_col]);
          if (c != 0) return c;
        }
        return 0;
      };
      auto cmp_ll = [&](uint32_t a, uint32_t b) {
        for (const EquiKey& k : keys) {
          int c = rows[a][k.existing_col].Compare(rows[b][k.existing_col]);
          if (c != 0) return c;
        }
        return 0;
      };
      auto cmp_rr = [&](uint32_t a, uint32_t b) {
        for (const EquiKey& k : keys) {
          int c = base_rows[a][k.new_col].Compare(base_rows[b][k.new_col]);
          if (c != 0) return c;
        }
        return 0;
      };
      // The accumulated side skips its sort when a previous sort-merge left
      // it ordered by exactly these columns (the "sorted output reusable"
      // case the cost model rewards).
      if (sorted_cols == left_cols) {
        ++stats_->merge_sorts_skipped;
      } else {
        std::stable_sort(lidx.begin(), lidx.end(),
                         [&](uint32_t a, uint32_t b) { return cmp_ll(a, b) < 0; });
      }
      std::stable_sort(ridx.begin(), ridx.end(),
                       [&](uint32_t a, uint32_t b) { return cmp_rr(a, b) < 0; });
      size_t li = 0, ri = 0;
      while (li < lidx.size() && ri < ridx.size()) {
        const int c = cmp_lr(lidx[li], ridx[ri]);
        if (c < 0) {
          ++li;
        } else if (c > 0) {
          ++ri;
        } else {
          size_t le = li + 1;
          while (le < lidx.size() && cmp_ll(lidx[li], lidx[le]) == 0) ++le;
          size_t re = ri + 1;
          while (re < ridx.size() && cmp_rr(ridx[ri], ridx[re]) == 0) ++re;
          for (size_t i = li; i < le; ++i) {
            for (size_t j = ri; j < re; ++j) {
              SFSQL_RETURN_IF_ERROR(
                  emit_if_passes(rows[lidx[i]], base_rows[ridx[j]]));
            }
          }
          li = le;
          ri = re;
        }
      }
      sorted_cols = std::move(left_cols);
    } else if (!keys.empty()) {
      // Hash join: build on the new (filtered) table, probe with the
      // accumulated rows. NULL keys never join, matching the legacy fold.
      ++stats_->hash_joins;
      const size_t grain = Grain();
      if (ParallelEnabled() &&
          (base_rows.size() > grain || rows.size() > grain)) {
        // Partitioned parallel build: workers slice the build side into
        // per-morsel per-partition key lists, then each partition's table is
        // assembled by one worker walking the morsels in order — so every
        // bucket's match list is in build-side row order, exactly like the
        // serial insertion order. Probe morsels then hit the partitions
        // directly (same RowHash picks the partition and the bucket) and
        // stitch their outputs in accumulated-row order.
        using BuildMap =
            std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq>;
        constexpr size_t kPartitions = 64;
        const size_t bmorsels = (base_rows.size() + grain - 1) / grain;
        std::vector<std::vector<std::vector<std::pair<uint32_t, Row>>>> parts(
            bmorsels,
            std::vector<std::vector<std::pair<uint32_t, Row>>>(kPartitions));
        pool_->ParallelFor(base_rows.size(), grain, [&](size_t b, size_t e) {
          auto& my = parts[b / grain];
          for (size_t i = b; i < e; ++i) {
            const Row& trow = base_rows[i];
            Row key;
            key.reserve(keys.size());
            bool has_null = false;
            for (const EquiKey& k : keys) {
              if (trow[k.new_col].is_null()) has_null = true;
              key.push_back(trow[k.new_col]);
            }
            if (has_null) continue;
            const size_t p = RowHash{}(key) % kPartitions;
            my[p].emplace_back(static_cast<uint32_t>(i), std::move(key));
          }
        });
        std::vector<BuildMap> build(kPartitions);
        pool_->ParallelFor(kPartitions, 1, [&](size_t pb, size_t pe) {
          for (size_t p = pb; p < pe; ++p) {
            for (size_t m = 0; m < bmorsels; ++m) {
              for (std::pair<uint32_t, Row>& kv : parts[m][p]) {
                build[p][std::move(kv.second)].push_back(
                    &base_rows[kv.first]);
              }
            }
          }
        });
        auto probe_body = [&](size_t b, size_t e, std::vector<Row>& out,
                              ExecStats&) -> Status {
          for (size_t i = b; i < e; ++i) {
            const Row& base = rows[i];
            Row probe;
            probe.reserve(keys.size());
            bool has_null = false;
            for (const EquiKey& k : keys) {
              if (base[k.existing_col].is_null()) has_null = true;
              probe.push_back(base[k.existing_col]);
            }
            if (has_null) continue;
            const BuildMap& part = build[RowHash{}(probe) % kPartitions];
            auto it = part.find(probe);
            if (it == part.end()) continue;
            for (const Row* trow : it->second) {
              SFSQL_RETURN_IF_ERROR(emit_row(base, *trow, out));
            }
          }
          return Status::OK();
        };
        SFSQL_RETURN_IF_ERROR(RowLoop(rows.size(), grain, probe_body, joined));
      } else {
        std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> build;
        for (const Row& trow : base_rows) {
          Row key;
          key.reserve(keys.size());
          bool has_null = false;
          for (const EquiKey& k : keys) {
            if (trow[k.new_col].is_null()) has_null = true;
            key.push_back(trow[k.new_col]);
          }
          if (has_null) continue;
          build[std::move(key)].push_back(&trow);
        }
        for (const Row& base : rows) {
          Row probe;
          probe.reserve(keys.size());
          bool has_null = false;
          for (const EquiKey& k : keys) {
            if (base[k.existing_col].is_null()) has_null = true;
            probe.push_back(base[k.existing_col]);
          }
          if (has_null) continue;
          auto it = build.find(probe);
          if (it == build.end()) continue;
          for (const Row* trow : it->second) {
            SFSQL_RETURN_IF_ERROR(emit_if_passes(base, *trow));
          }
        }
      }
    } else {
      for (const Row& base : rows) {
        for (const Row& trow : base_rows) {
          SFSQL_RETURN_IF_ERROR(emit_if_passes(base, trow));
        }
      }
    }
    schema = std::move(next);
    rows = std::move(joined);
  }

  // Stars expand in the original FROM order regardless of the fold order:
  // slot step_of[f] holds FROM entry f.
  schema.star_order.assign(step_of.begin(), step_of.end());
  return rows;
}

Result<QueryResult> BlockExecutor::ExecuteBlock(const SelectStatement& stmt,
                                                const Env& outer) {
  const bool root = !analyzed_;
  if (!analyzed_) {
    // First call = the root statement; subquery blocks recurse through here
    // with the analysis already in place.
    analyzed_ = true;
    CollectReferences(stmt);
  }
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), conjuncts);
  // An OR at the top level is a single conjunct; fine — it lands in the final
  // filter below.
  std::vector<bool> conjunct_used(conjuncts.size(), false);

  BlockSchema schema;
  std::vector<Row> rows;
  {
    const BlockPlan* plan = nullptr;
    if (config_->use_index_scan && !stmt.from.empty()) {
      plan = &GetPlan(stmt, conjuncts);
      if (!plan->usable) plan = nullptr;  // legacy fold reproduces the edge
    }
    if (root && info_ != nullptr && plan != nullptr) {
      info_->access_paths = ExplainPlan(*db_, *plan);
    }
    Result<std::vector<Row>> built =
        plan != nullptr
            ? BuildFromRowsPlanned(*plan, schema, outer, conjuncts,
                                   conjunct_used)
            : BuildFromRows(stmt, schema, outer, conjuncts, conjunct_used);
    if (!built.ok()) return built.status();
    rows = std::move(*built);
    if (root && info_ != nullptr && plan != nullptr) {
      // Estimated vs actual rows out of the join fold, both pre-residual —
      // the q-error the cost model is judged on.
      info_->estimated_join_rows = plan->estimated_output_rows;
      info_->actual_join_rows = rows.size();
      info_->has_join_actuals = true;
    }
  }

  // Final filter: conjuncts not consumed by the pipeline (subqueries,
  // outer-correlated predicates, OR trees).
  {
    std::vector<Row> filtered;
    for (Row& row : rows) {
      Env env = outer;
      env.push_back(Frame{&schema, &row});
      bool pass = true;
      for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
        if (conjunct_used[ci]) continue;
        SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*conjuncts[ci], env));
        if (!Truthy(v)) {
          pass = false;
          break;
        }
      }
      if (pass) filtered.push_back(std::move(row));
    }
    rows = std::move(filtered);
  }

  bool has_aggregate = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.select_items) {
    if (ContainsAggregate(*item.expr)) has_aggregate = true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) has_aggregate = true;
  for (const sql::OrderItem& o : stmt.order_by) {
    if (ContainsAggregate(*o.expr)) has_aggregate = true;
  }

  QueryResult result;

  // Column labels.
  auto label_of = [&](const sql::SelectItem& item) {
    return item.alias.empty() ? sql::PrintExpr(*item.expr) : item.alias;
  };

  // Expand stars for the non-aggregate path.
  auto expand_star = [&](const Expr& star, Row& out_row, const Row& src,
                         bool label_pass) {
    for (size_t si = 0; si < schema.slots.size(); ++si) {
      const Slot& slot = schema.slots[schema.star_order.empty()
                                          ? si
                                          : schema.star_order[si]];
      if (star.relation.specified() &&
          ToLower(star.relation.name) != slot.binding_lower) {
        continue;
      }
      const catalog::Relation& rel = db_->catalog().relation(slot.relation_id);
      for (int a = 0; a < slot.width; ++a) {
        if (label_pass) {
          result.columns.push_back(
              StrCat(slot.binding_lower, ".", rel.attributes[a].name));
        } else {
          out_row.push_back(src[slot.offset + a]);
        }
      }
    }
  };

  // Order keys computed alongside projection.
  struct OutRow {
    Row projected;
    Row order_keys;
  };
  std::vector<OutRow> out_rows;

  if (has_aggregate) {
    // Group rows.
    std::vector<std::string> group_by_text;
    for (const ExprPtr& g : stmt.group_by) {
      group_by_text.push_back(sql::PrintExpr(*g));
    }
    std::unordered_map<Row, Group, RowHash, RowEq> groups;
    std::vector<Row> group_order;  // first-seen order
    for (const Row& row : rows) {
      Env env = outer;
      env.push_back(Frame{&schema, &row});
      Row key;
      for (const ExprPtr& g : stmt.group_by) {
        SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*g, env));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.key = key;
        group_order.push_back(key);
      }
      it->second.rows.push_back(&row);
    }
    if (stmt.group_by.empty() && groups.empty()) {
      // Global aggregate over an empty input still yields one group.
      groups.try_emplace(Row{});
      group_order.push_back(Row{});
    }

    for (const Row& key : group_order) {
      const Group& group = groups[key];
      if (stmt.having) {
        SFSQL_ASSIGN_OR_RETURN(
            Value v, EvalGrouped(*stmt.having, group, group_by_text, group.key,
                                 schema, outer));
        if (!Truthy(v)) continue;
      }
      OutRow out;
      for (const sql::SelectItem& item : stmt.select_items) {
        if (item.expr->kind == ExprKind::kStar) {
          return Status::ExecutionError("'*' cannot appear in an aggregate query");
        }
        SFSQL_ASSIGN_OR_RETURN(
            Value v, EvalGrouped(*item.expr, group, group_by_text, group.key,
                                 schema, outer));
        out.projected.push_back(std::move(v));
      }
      for (const sql::OrderItem& o : stmt.order_by) {
        SFSQL_ASSIGN_OR_RETURN(
            Value v, EvalGrouped(*o.expr, group, group_by_text, group.key,
                                 schema, outer));
        out.order_keys.push_back(std::move(v));
      }
      out_rows.push_back(std::move(out));
    }
    for (const sql::SelectItem& item : stmt.select_items) {
      result.columns.push_back(label_of(item));
    }
  } else {
    // Plain projection. Resolve ORDER BY aliases to select items up front.
    for (const sql::SelectItem& item : stmt.select_items) {
      if (item.expr->kind == ExprKind::kStar) {
        Row dummy;
        expand_star(*item.expr, dummy, dummy, /*label_pass=*/true);
      } else {
        result.columns.push_back(label_of(item));
      }
    }
    for (const Row& row : rows) {
      Env env = outer;
      env.push_back(Frame{&schema, &row});
      OutRow out;
      for (const sql::SelectItem& item : stmt.select_items) {
        if (item.expr->kind == ExprKind::kStar) {
          expand_star(*item.expr, out.projected, row, /*label_pass=*/false);
        } else {
          SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, env));
          out.projected.push_back(std::move(v));
        }
      }
      for (const sql::OrderItem& o : stmt.order_by) {
        // ORDER BY may name a select alias.
        bool is_alias = false;
        if (o.expr->kind == ExprKind::kColumnRef && !o.expr->relation.specified()) {
          for (size_t i = 0; i < stmt.select_items.size(); ++i) {
            if (!stmt.select_items[i].alias.empty() &&
                EqualsIgnoreCase(stmt.select_items[i].alias,
                                 o.expr->attribute.name)) {
              out.order_keys.push_back(out.projected[i]);
              is_alias = true;
              break;
            }
          }
        }
        if (is_alias) continue;
        SFSQL_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, env));
        out.order_keys.push_back(std::move(v));
      }
      out_rows.push_back(std::move(out));
    }
  }

  if (stmt.distinct) {
    std::unordered_set<Row, RowHash, RowEq> seen;
    std::vector<OutRow> unique;
    for (OutRow& out : out_rows) {
      if (seen.insert(out.projected).second) unique.push_back(std::move(out));
    }
    out_rows = std::move(unique);
  }

  if (!stmt.order_by.empty()) {
    std::stable_sort(out_rows.begin(), out_rows.end(),
                     [&](const OutRow& a, const OutRow& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         int cmp = a.order_keys[i].Compare(b.order_keys[i]);
                         if (cmp != 0) {
                           return stmt.order_by[i].ascending ? cmp < 0 : cmp > 0;
                         }
                       }
                       return false;
                     });
  }

  if (stmt.limit.has_value() &&
      static_cast<int64_t>(out_rows.size()) > *stmt.limit) {
    out_rows.resize(*stmt.limit);
  }

  result.rows.reserve(out_rows.size());
  for (OutRow& out : out_rows) result.rows.push_back(std::move(out.projected));
  return result;
}

}  // namespace

std::string QueryResult::ToString() const {
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  std::vector<std::vector<std::string>> cells;
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size()) widths[i] = std::max(widths[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += columns[i];
    out.append(widths[i] - columns[i].size() + 2, ' ');
  }
  out += "\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      out += line[i];
      if (i < widths.size()) out.append(widths[i] - line[i].size() + 2, ' ');
    }
    out += "\n";
  }
  return out;
}

bool QueryResult::SameRows(const QueryResult& other) const {
  if (rows.size() != other.rows.size()) return false;
  std::unordered_map<Row, int, RowHash, RowEq> counts;
  for (const Row& r : rows) counts[r]++;
  for (const Row& r : other.rows) {
    auto it = counts.find(r);
    if (it == counts.end() || it->second == 0) return false;
    it->second--;
  }
  return true;
}

Executor::Executor(const storage::Database* db) : db_(db) {}

Executor::Executor(const storage::Database* db, const ExecConfig& config)
    : db_(db), config_(config) {}

Executor::~Executor() = default;

void Executor::set_config(const ExecConfig& config) {
  config_ = config;
  // A private pool sized for the old exec_threads would silently cap the new
  // one; drop it and re-create lazily.
  owned_pool_.reset();
}

TaskPool* Executor::EffectivePool() {
  if (config_.exec_threads <= 1) return nullptr;
  if (config_.pool != nullptr) return config_.pool;
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (owned_pool_ == nullptr) {
    owned_pool_ =
        std::make_unique<TaskPool>(static_cast<size_t>(config_.exec_threads) - 1);
  }
  return owned_pool_.get();
}

void Executor::EnableMetrics(obs::MetricsRegistry* registry,
                             const obs::Clock* clock) {
  if (registry == nullptr) {
    clock_ = nullptr;
    execute_total_ = execute_errors_ = execute_rows_ = nullptr;
    execute_seconds_ = nullptr;
    index_scans_total_ = table_scans_total_ = index_joins_total_ = nullptr;
    hash_joins_total_ = sort_merge_joins_total_ = nullptr;
    merge_sorts_skipped_total_ = nullptr;
    rows_pruned_total_ = pushed_predicates_total_ = nullptr;
    chunks_pruned_total_ = rows_scanned_total_ = nullptr;
    return;
  }
  clock_ = obs::ClockOrSteady(clock);
  execute_total_ = registry->GetCounter("sfsql_execute_total",
                                        "Executed SELECT statements");
  execute_errors_ = registry->GetCounter("sfsql_execute_errors_total",
                                         "Executions that returned an error");
  execute_rows_ = registry->GetCounter("sfsql_execute_rows_total",
                                       "Result rows materialized");
  execute_seconds_ = registry->GetHistogram(
      "sfsql_execute_seconds", "Execution wall time", obs::LatencyBuckets());
  index_scans_total_ = registry->GetCounter(
      "sfsql_exec_index_scans_total", "Base tables answered by an IndexScan");
  table_scans_total_ = registry->GetCounter(
      "sfsql_exec_table_scans_total", "Base tables answered by a full scan");
  index_joins_total_ = registry->GetCounter(
      "sfsql_exec_index_joins_total",
      "Base tables answered by an index nested-loop join");
  hash_joins_total_ = registry->GetCounter(
      "sfsql_exec_hash_joins_total", "Fold steps answered by a hash join");
  sort_merge_joins_total_ = registry->GetCounter(
      "sfsql_exec_sort_merge_joins_total",
      "Fold steps answered by a sort-merge join");
  merge_sorts_skipped_total_ = registry->GetCounter(
      "sfsql_exec_merge_sorts_skipped_total",
      "Sort-merge inputs already sorted by the key (sort skipped)");
  rows_pruned_total_ = registry->GetCounter(
      "sfsql_exec_rows_pruned_total",
      "Base rows eliminated below the join by pushed predicates");
  pushed_predicates_total_ = registry->GetCounter(
      "sfsql_exec_pushed_predicates_total",
      "Predicates evaluated below the join (index-answered or per base row)");
  chunks_pruned_total_ = registry->GetCounter(
      "sfsql_exec_chunks_pruned_total",
      "Chunks skipped by scans via per-chunk min/max statistics");
  rows_scanned_total_ = registry->GetCounter(
      "sfsql_exec_rows_scanned_total",
      "Base rows read from storage (scans, index scans, and index joins)");
}

Result<QueryResult> Executor::Execute(const sql::SelectStatement& stmt,
                                      ExecInfo* info) {
  const bool slow_armed = config_.slow_execute_threshold_ms > 0.0;
  const bool timing =
      execute_seconds_ != nullptr || info != nullptr || slow_armed;
  const obs::Clock* clock =
      clock_ != nullptr ? clock_ : obs::ClockOrSteady(config_.clock);
  const uint64_t start = timing ? clock->NowNanos() : 0;
  ExecStats stats;
  Result<QueryResult> out = QueryResult{};
  {
    // Pin every table's row count for the whole execution: IndexScan row ids
    // stay exactly valid (column_index.h staleness contract) and concurrent
    // inserts wait instead of racing the row vectors.
    auto lock = db_->ReadLock();
    // Pool tasks spawned below run strictly within this lock scope (the
    // ParallelFor barrier completes before the executor returns), so morsel
    // workers see the same pinned row counts as the caller.
    BlockExecutor block(db_, &config_, &stats, info, EffectivePool());
    out = block.ExecuteBlock(stmt, Env{});
  }
  const double seconds =
      timing ? obs::NanosToSeconds(clock->NowNanos() - start) : 0.0;
  constexpr auto kRelaxed = std::memory_order_relaxed;
  index_scans_.fetch_add(stats.index_scans, kRelaxed);
  table_scans_.fetch_add(stats.table_scans, kRelaxed);
  index_joins_.fetch_add(stats.index_joins, kRelaxed);
  hash_joins_.fetch_add(stats.hash_joins, kRelaxed);
  sort_merge_joins_.fetch_add(stats.sort_merge_joins, kRelaxed);
  merge_sorts_skipped_.fetch_add(stats.merge_sorts_skipped, kRelaxed);
  rows_pruned_.fetch_add(stats.rows_pruned, kRelaxed);
  pushed_predicates_.fetch_add(stats.pushed_predicates, kRelaxed);
  chunks_pruned_.fetch_add(stats.chunks_pruned, kRelaxed);
  rows_scanned_.fetch_add(stats.rows_scanned, kRelaxed);
  if (execute_seconds_ != nullptr) {
    execute_seconds_->Observe(seconds);
    execute_total_->Increment();
    if (out.ok()) {
      execute_rows_->Increment(out->rows.size());
    } else {
      execute_errors_->Increment();
    }
    index_scans_total_->Increment(stats.index_scans);
    table_scans_total_->Increment(stats.table_scans);
    index_joins_total_->Increment(stats.index_joins);
    hash_joins_total_->Increment(stats.hash_joins);
    sort_merge_joins_total_->Increment(stats.sort_merge_joins);
    merge_sorts_skipped_total_->Increment(stats.merge_sorts_skipped);
    rows_pruned_total_->Increment(stats.rows_pruned);
    pushed_predicates_total_->Increment(stats.pushed_predicates);
    chunks_pruned_total_->Increment(stats.chunks_pruned);
    rows_scanned_total_->Increment(stats.rows_scanned);
  }
  if (info != nullptr) {
    info->stats = stats;
    info->rows_returned = out.ok() ? out->rows.size() : 0;
    info->seconds = seconds;
  }
  if (slow_armed && seconds * 1e3 >= config_.slow_execute_threshold_ms) {
    // One structured line per event, machine-parseable (unlike the slow
    // translate dump, there is no span tree to render — the stats are the
    // whole story).
    obs::JsonWriter w(/*pretty=*/false);
    w.BeginObject();
    w.KV("event", "slow_execute");
    w.KV("ms", seconds * 1e3);
    w.KV("threshold_ms", config_.slow_execute_threshold_ms);
    w.KV("sql", sql::PrintSelect(stmt));
    w.KV("ok", out.ok());
    w.KV("rows_returned",
         static_cast<unsigned long long>(out.ok() ? out->rows.size() : 0));
    w.KV("rows_scanned", static_cast<unsigned long long>(stats.rows_scanned));
    w.KV("index_scans", static_cast<unsigned long long>(stats.index_scans));
    w.KV("table_scans", static_cast<unsigned long long>(stats.table_scans));
    w.KV("index_joins", static_cast<unsigned long long>(stats.index_joins));
    w.KV("chunks_pruned",
         static_cast<unsigned long long>(stats.chunks_pruned));
    w.EndObject();
    std::string line = w.TakeString();
    line += '\n';
    if (config_.slow_log_sink) {
      config_.slow_log_sink(line);
    } else {
      std::fputs(line.c_str(), stderr);
    }
  }
  return out;
}

ExecStats Executor::stats() const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  ExecStats s;
  s.index_scans = index_scans_.load(kRelaxed);
  s.table_scans = table_scans_.load(kRelaxed);
  s.index_joins = index_joins_.load(kRelaxed);
  s.hash_joins = hash_joins_.load(kRelaxed);
  s.sort_merge_joins = sort_merge_joins_.load(kRelaxed);
  s.merge_sorts_skipped = merge_sorts_skipped_.load(kRelaxed);
  s.rows_pruned = rows_pruned_.load(kRelaxed);
  s.pushed_predicates = pushed_predicates_.load(kRelaxed);
  s.chunks_pruned = chunks_pruned_.load(kRelaxed);
  s.rows_scanned = rows_scanned_.load(kRelaxed);
  return s;
}

std::vector<TableAccessExplain> Executor::ExplainAccessPaths(
    const sql::SelectStatement& stmt) const {
  auto lock = db_->ReadLock();
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), conjuncts);
  if (!config_.use_index_scan) return {};
  return ExplainPlan(*db_, PlanBlock(*db_, stmt, conjuncts, config_));
}

Result<QueryResult> Executor::ExecuteSql(std::string_view sql_text) {
  SFSQL_ASSIGN_OR_RETURN(sql::SelectPtr stmt, sql::ParseSelect(sql_text));
  return Execute(*stmt);
}

}  // namespace sfsql::exec
