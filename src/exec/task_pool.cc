#include "exec/task_pool.h"

#include <chrono>
#include <exception>
#include <utility>

#include "obs/metrics.h"

namespace sfsql::exec {

void WaitGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  count_ += n;
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lk(mu_);
  --count_;
  if (count_ == 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return count_ == 0; });
}

namespace {

/// Set while this thread is executing a pool task; a ParallelFor issued from
/// inside one must not block on pool capacity it is itself occupying.
thread_local bool t_in_pool_task = false;

}  // namespace

/// One ParallelFor in flight. Stack-allocated by the caller; morsels hold a
/// pointer, and wg guarantees the caller outlives every reference.
struct LoopState {
  const std::function<void(size_t, size_t)>* body = nullptr;
  WaitGroup wg;
  std::mutex ex_mu;
  std::exception_ptr ex;
};

TaskPool::TaskPool(size_t workers) {
  queues_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
    ++epoch_;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::RunMorsel(const Morsel& m) {
  bool prev = t_in_pool_task;
  t_in_pool_task = true;
  try {
    (*m.loop->body)(m.begin, m.end);
  } catch (...) {
    std::lock_guard<std::mutex> lk(m.loop->ex_mu);
    if (!m.loop->ex) m.loop->ex = std::current_exception();
  }
  t_in_pool_task = prev;
  tasks_.fetch_add(1, std::memory_order_relaxed);
  m.loop->wg.Done();
}

bool TaskPool::TryRunOne(size_t self) {
  const size_t w = queues_.size();
  // Own deque first (front = LIFO-ish locality), then victims from the back.
  for (size_t k = 0; k < w; ++k) {
    size_t q = (self + k) % w;
    if (self >= w) q = k;  // callers have no own deque; scan in order
    Morsel m;
    {
      std::lock_guard<std::mutex> lk(queues_[q]->mu);
      if (queues_[q]->dq.empty()) continue;
      if (q == self) {
        m = queues_[q]->dq.front();
        queues_[q]->dq.pop_front();
      } else {
        m = queues_[q]->dq.back();
        queues_[q]->dq.pop_back();
      }
    }
    if (q != self && self < w) steals_.fetch_add(1, std::memory_order_relaxed);
    RunMorsel(m);
    return true;
  }
  return false;
}

void TaskPool::WorkerLoop(size_t self) {
  for (;;) {
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lk(wake_mu_);
      if (stop_) return;
      seen = epoch_;
    }
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (stop_) return;
    if (epoch_ != seen) continue;  // work arrived after the scan; rescan
    auto t0 = std::chrono::steady_clock::now();
    wake_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    auto waited = std::chrono::steady_clock::now() - t0;
    idle_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count(),
        std::memory_order_relaxed);
    lk.unlock();
    PublishMetricsDelta();
  }
}

void TaskPool::ParallelFor(size_t n, size_t grain,
                           const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_morsels = (n + grain - 1) / grain;

  auto run_inline = [&] {
    for (size_t i = 0; i < num_morsels; ++i) {
      size_t begin = i * grain;
      size_t end = begin + grain < n ? begin + grain : n;
      body(begin, end);
    }
    tasks_.fetch_add(num_morsels, std::memory_order_relaxed);
  };

  if (t_in_pool_task) {
    // Nested fan-out would block on pool capacity this thread is occupying;
    // run the loop inline instead (still morsel-by-morsel, so per-morsel
    // output slots stitch identically).
    nested_inline_.fetch_add(1, std::memory_order_relaxed);
    run_inline();
    return;
  }
  if (workers_.empty() || num_morsels == 1) {
    run_inline();
    PublishMetricsDelta();
    return;
  }

  LoopState loop;
  loop.body = &body;
  loop.wg.Add(num_morsels);
  // Deal morsels round-robin across the worker deques, one queue lock each.
  const size_t w = queues_.size();
  for (size_t q = 0; q < w; ++q) {
    std::lock_guard<std::mutex> lk(queues_[q]->mu);
    for (size_t i = q; i < num_morsels; i += w) {
      size_t begin = i * grain;
      size_t end = begin + grain < n ? begin + grain : n;
      queues_[q]->dq.push_back(Morsel{&loop, begin, end});
    }
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    ++epoch_;
  }
  wake_cv_.notify_all();
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);

  // The caller drains morsels too (its own loop's or any other in-flight
  // loop's — either way the pool makes progress), then blocks for stragglers.
  while (TryRunOne(w)) {
  }
  loop.wg.Wait();
  PublishMetricsDelta();

  if (loop.ex) std::rethrow_exception(loop.ex);
}

TaskPoolStats TaskPool::stats() const {
  TaskPoolStats s;
  s.workers = workers_.size();
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  s.nested_inline = nested_inline_.load(std::memory_order_relaxed);
  s.idle_ms = idle_ns_.load(std::memory_order_relaxed) / 1000000;
  return s;
}

void TaskPool::EnableMetrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  if (registry == nullptr) {
    tasks_counter_ = steals_counter_ = parallel_fors_counter_ =
        idle_ms_counter_ = nullptr;
    return;
  }
  tasks_counter_ = registry->GetCounter(
      "sfsql_pool_tasks_total", "Morsels executed by the engine task pool");
  steals_counter_ = registry->GetCounter(
      "sfsql_pool_steals_total",
      "Morsels a pool worker stole from another worker's deque");
  parallel_fors_counter_ = registry->GetCounter(
      "sfsql_pool_parallel_fors_total",
      "ParallelFor calls that fanned out across the pool");
  idle_ms_counter_ = registry->GetCounter(
      "sfsql_pool_idle_ms_total",
      "Total milliseconds pool workers spent parked waiting for work");
  tasks_published_ = steals_published_ = parallel_fors_published_ =
      idle_ms_published_ = 0;
}

void TaskPool::PublishMetricsDelta() {
  std::lock_guard<std::mutex> lk(metrics_mu_);
  if (tasks_counter_ == nullptr) return;
  TaskPoolStats s = stats();
  tasks_counter_->Increment(s.tasks - tasks_published_);
  steals_counter_->Increment(s.steals - steals_published_);
  parallel_fors_counter_->Increment(s.parallel_fors -
                                    parallel_fors_published_);
  idle_ms_counter_->Increment(s.idle_ms - idle_ms_published_);
  tasks_published_ = s.tasks;
  steals_published_ = s.steals;
  parallel_fors_published_ = s.parallel_fors;
  idle_ms_published_ = s.idle_ms;
}

}  // namespace sfsql::exec
