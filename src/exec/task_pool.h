#ifndef SFSQL_EXEC_TASK_POOL_H_
#define SFSQL_EXEC_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sfsql::obs {
class Counter;
class MetricsRegistry;
}  // namespace sfsql::obs

namespace sfsql::exec {

/// Blocking completion latch in the Go style: Add(n) before handing out n
/// units of work, Done() as each finishes, Wait() blocks until the count
/// returns to zero. Done() on a zero count is a bug; it is left undefined
/// rather than checked on the hot path.
class WaitGroup {
 public:
  void Add(size_t n);
  void Done();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_ = 0;
};

/// Point-in-time pool counters (cumulative since construction). `idle_ms` is
/// the summed wall time workers spent parked waiting for work — on an
/// otherwise quiet engine it grows at `workers` seconds per second, which is
/// exactly what a utilization dashboard wants to divide by.
struct TaskPoolStats {
  size_t workers = 0;
  uint64_t tasks = 0;          ///< morsels executed (by workers and callers)
  uint64_t steals = 0;         ///< morsels a worker took from another's deque
  uint64_t parallel_fors = 0;  ///< ParallelFor calls that fanned out
  uint64_t nested_inline = 0;  ///< nested ParallelFor calls run inline
  uint64_t idle_ms = 0;        ///< total worker time parked waiting for work
};

/// Engine-wide work-stealing thread pool. One instance is shared by every
/// subsystem that fans out (the executor's morsel loops, the generator's
/// per-root TopK): a fixed set of OS threads with per-worker deques, so two
/// concurrent queries interleave at morsel granularity instead of
/// oversubscribing the machine with per-call thread spawns.
///
/// Scheduling: ParallelFor splits [0, n) into contiguous morsels of `grain`
/// items and deals them round-robin across the worker deques. Workers pop
/// their own deque from the front and steal from the back of a victim's
/// deque when empty; the calling thread participates too (it drains morsels
/// while waiting), so a pool with W workers reaches W+1-way parallelism and
/// a pool with zero workers degrades to a plain serial loop.
///
/// Concurrency contract:
///  * ParallelFor is safe to call from any number of threads concurrently;
///    morsels of distinct loops share the deques and complete independently.
///  * A nested ParallelFor (called from inside a pool task) runs inline and
///    serially on the calling thread — never deadlocks, counted in
///    stats().nested_inline so tests can assert the rejection fired.
///  * ParallelFor provides the usual fork-join memory ordering: writes by
///    the caller before the call happen-before every body invocation, and
///    writes by bodies happen-before ParallelFor's return. Pool tasks run
///    under whatever locks the *caller* holds (e.g. Database::ReadLock held
///    across Execute) — workers themselves never take engine locks.
///  * If any body throws, the first exception is captured and rethrown on
///    the calling thread after all morsels of the loop finish.
///
/// Destruction joins the workers; the owner must ensure no ParallelFor is in
/// flight (the engine destroys the pool after every executor is gone).
class TaskPool {
 public:
  /// Spawns `workers` OS threads (0 is valid: everything runs inline on the
  /// calling thread, which keeps single-threaded configs thread-free).
  explicit TaskPool(size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Worker threads plus the participating caller.
  size_t max_parallelism() const { return workers_.size() + 1; }

  /// Runs body(begin, end) over contiguous morsels [begin, end) covering
  /// [0, n), each at most `grain` items (grain 0 is treated as 1), and
  /// blocks until every morsel completed. Morsel boundaries are deterministic
  /// (i-th morsel is [i*grain, min(n, (i+1)*grain))); execution order is not
  /// — callers that need deterministic output must write into per-morsel
  /// slots and stitch in morsel order.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  TaskPoolStats stats() const;

  /// Registers sfsql_pool_tasks_total, sfsql_pool_steals_total,
  /// sfsql_pool_parallel_fors_total and sfsql_pool_idle_ms_total in
  /// `registry` (null detaches). Counters are flushed from the pool's own
  /// atomics once per ParallelFor / worker wake, not per task.
  void EnableMetrics(obs::MetricsRegistry* registry);

 private:
  struct Morsel {
    struct LoopState* loop = nullptr;
    size_t begin = 0;
    size_t end = 0;
  };

  struct alignas(64) WorkerQueue {
    std::mutex mu;
    std::deque<Morsel> dq;
  };

  void WorkerLoop(size_t self);
  bool TryRunOne(size_t self);  ///< self == workers_.size() for callers
  void RunMorsel(const Morsel& m);
  void PublishMetricsDelta();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Wake protocol: epoch_ increments under wake_mu_ whenever work is pushed;
  // a worker that found every deque empty re-checks the epoch before parking
  // so a push between its scan and its wait cannot be missed.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  uint64_t epoch_ = 0;
  bool stop_ = false;

  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> parallel_fors_{0};
  std::atomic<uint64_t> nested_inline_{0};
  std::atomic<uint64_t> idle_ns_{0};

  // Last values flushed into the obs counters (guarded by metrics_mu_).
  std::mutex metrics_mu_;
  obs::Counter* tasks_counter_ = nullptr;
  obs::Counter* steals_counter_ = nullptr;
  obs::Counter* parallel_fors_counter_ = nullptr;
  obs::Counter* idle_ms_counter_ = nullptr;
  uint64_t tasks_published_ = 0;
  uint64_t steals_published_ = 0;
  uint64_t parallel_fors_published_ = 0;
  uint64_t idle_ms_published_ = 0;
};

}  // namespace sfsql::exec

#endif  // SFSQL_EXEC_TASK_POOL_H_
