#include "exec/like.h"

#include <vector>

namespace sfsql::exec {

namespace {

/// One compiled pattern element.
struct PatternTok {
  enum Kind { kAnyRun, kAnyOne, kLiteral } kind;
  char ch = '\0';  // for kLiteral
};

/// Expands escapes so the matcher below never has to ask whether a '%' is a
/// wildcard: after compilation every token's meaning is unambiguous.
std::vector<PatternTok> Compile(std::string_view pattern, char escape) {
  std::vector<PatternTok> toks;
  toks.reserve(pattern.size());
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (escape != '\0' && c == escape) {
      if (i + 1 < pattern.size()) {
        toks.push_back({PatternTok::kLiteral, pattern[++i]});
      } else {
        toks.push_back({PatternTok::kLiteral, escape});  // dangling escape
      }
    } else if (c == '%') {
      toks.push_back({PatternTok::kAnyRun});
    } else if (c == '_') {
      toks.push_back({PatternTok::kAnyOne});
    } else {
      toks.push_back({PatternTok::kLiteral, c});
    }
  }
  return toks;
}

}  // namespace

char LikeEscapeChar(std::string_view escape_spec) {
  return escape_spec.empty() ? '\0' : escape_spec[0];
}

LikePatternInfo AnalyzeLikePattern(std::string_view pattern, char escape) {
  LikePatternInfo info;
  std::string run;
  auto flush = [&] {
    if (!run.empty()) info.literal_runs.push_back(std::move(run));
    run.clear();
  };
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (escape != '\0' && c == escape) {
      // Dangling escape matches a literal escape char, mirroring Compile.
      run += i + 1 < pattern.size() ? pattern[++i] : escape;
    } else if (c == '%' || c == '_') {
      if (!info.has_wildcards) info.prefix = run;
      info.has_wildcards = true;
      flush();
    } else {
      run += c;
    }
  }
  if (!info.has_wildcards) info.prefix = run;
  flush();
  return info;
}

bool LikeMatch(std::string_view text, std::string_view pattern, char escape) {
  std::vector<PatternTok> toks = Compile(pattern, escape);
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = static_cast<size_t>(-1), star_t = 0;
  while (t < text.size()) {
    if (p < toks.size() &&
        (toks[p].kind == PatternTok::kAnyOne ||
         (toks[p].kind == PatternTok::kLiteral && toks[p].ch == text[t]))) {
      ++t;
      ++p;
    } else if (p < toks.size() && toks[p].kind == PatternTok::kAnyRun) {
      star_p = p++;
      star_t = t;
    } else if (star_p != static_cast<size_t>(-1)) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < toks.size() && toks[p].kind == PatternTok::kAnyRun) ++p;
  return p == toks.size();
}

}  // namespace sfsql::exec
