#ifndef SFSQL_EXEC_ACCESS_PATH_H_
#define SFSQL_EXEC_ACCESS_PATH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/database.h"
#include "storage/value.h"

namespace sfsql::obs {
class Clock;
}  // namespace sfsql::obs

namespace sfsql::exec {

class TaskPool;

/// Join algorithm chosen by the cost model for one fold step. kNone means
/// the planner made no choice — the executor applies its legacy runtime
/// heuristics (hash join, or an index nested-loop join when the accumulated
/// side is small enough).
enum class JoinAlgo {
  kNone,
  kHash,             ///< build on the new table, probe with accumulated rows
  kIndexNestedLoop,  ///< probe the join column's index per accumulated row
  kSortMerge,        ///< sort both sides by the key columns and merge
  kNestedLoop,       ///< no equi keys: cross product + per-pair filters
};

/// Lowercase display name ("hash", "index_nl", "sort_merge", ...).
const char* JoinAlgoName(JoinAlgo algo);

/// Execution knobs. `use_index_scan = false` forces the original naive
/// fold (full scan per FROM entry, predicates classified during the fold) —
/// kept as the differential-testing and benchmarking baseline.
struct ExecConfig {
  bool use_index_scan = true;
  /// Consult the per-column indexes (exact counts, IndexScan row ids, index
  /// nested-loop joins). With this off but `use_index_scan` on, the planner
  /// still runs — scans prune whole chunks through the per-chunk statistics
  /// and push sargable conjuncts below the join, but never build or probe an
  /// index. This isolates the chunk-statistics win in benchmarks.
  bool use_column_index = true;
  /// Reorder the join fold by post-pushdown cardinality (cheapest build side
  /// first). Only applied when the block is provably order-insensitive — see
  /// ReorderSafe below.
  bool reorder_joins = true;
  /// Cost-based planning (exec/cost_model): estimate cardinalities from the
  /// chunk statistics + exact index counts, search join orders with a
  /// left-deep DP (greedy above `cost_dp_max_tables`), and pick the join
  /// algorithm (hash / index nested-loop / sort-merge) per fold step by
  /// cost. Off = the original greedy reorder with runtime algorithm
  /// heuristics — kept as the benchmarking baseline; both produce identical
  /// result multisets.
  bool use_cost_model = true;
  /// Above this many FROM entries the join-order DP (2^n subsets) falls back
  /// to the greedy connected-first order; algorithms are still costed.
  int cost_dp_max_tables = 10;
  /// Testing/benchmarking: force every planned equi-join step to the
  /// sort-merge operator (where the block is reorder-safe), regardless of
  /// cost. Exercises the operator in differential suites.
  bool force_sort_merge = false;
  /// An IndexScan is chosen only when the best single-predicate estimate
  /// keeps at most this fraction of the table; above it, the scan's
  /// sequential pass wins over materializing row-id lists.
  double max_index_selectivity = 0.25;
  /// Executions slower than this emit one structured JSON line (event
  /// "slow_execute") to `slow_log_sink` (stderr when unset) — the execution
  /// counterpart of EngineConfig::slow_translate_threshold_ms. <= 0 disables.
  double slow_execute_threshold_ms = 0.0;
  std::function<void(const std::string&)> slow_log_sink;
  /// Clock for slow-execute timing and the profile latency when no metrics
  /// registry supplies one (tests inject a FakeClock). Null = steady clock.
  const obs::Clock* clock = nullptr;
  /// Intra-query parallelism: threads the planned fold may use for its
  /// morsel loops (scan + pushed filter, hash-join build/probe, index
  /// nested-loop probes). 1 = the serial legacy path, thread-free and
  /// bit-identical to the pre-pool executor. Values above 1 run on `pool`
  /// (the Executor lazily creates a private pool of exec_threads - 1 workers
  /// when none is wired in); the pool's worker count, not this number, caps
  /// the actual fan-out. Results are bit-identical at every setting: morsel
  /// outputs are stitched in morsel order.
  int exec_threads = 1;
  /// Rows per morsel for the parallel loops. 0 = 4096. Scans round this up
  /// to whole chunks, so any grain at or below the table's chunk_capacity
  /// means one chunk per morsel. Correctness is grain-independent.
  size_t morsel_grain = 0;
  /// Shared work-stealing pool the morsel loops run on (borrowed — the
  /// engine owns one pool shared by execution and translation). Null with
  /// exec_threads > 1: the Executor creates its own.
  TaskPool* pool = nullptr;
};

/// Per-execution access-path counters, accumulated across every block
/// (including subquery re-executions, so correlated blocks count once per
/// outer row).
struct ExecStats {
  uint64_t index_scans = 0;        ///< base tables answered by an IndexScan
  uint64_t table_scans = 0;        ///< base tables answered by a full scan
  uint64_t index_joins = 0;        ///< base tables probed via index join
  uint64_t hash_joins = 0;         ///< fold steps answered by a hash join
  uint64_t sort_merge_joins = 0;   ///< fold steps answered by sort-merge
  uint64_t merge_sorts_skipped = 0;  ///< sort-merge inputs already sorted
  uint64_t rows_pruned = 0;        ///< base rows eliminated below the join
  uint64_t pushed_predicates = 0;  ///< predicates evaluated below the join
  uint64_t chunks_pruned = 0;      ///< chunks skipped via per-chunk statistics
  uint64_t rows_scanned = 0;       ///< base rows read from storage (all paths)
};

/// One sargable conjunct bound to a column: a shape the column index can
/// answer exactly (see ColumnIndex::Rows*). Operand values are literals only
/// (after folding unary minus), so the predicate is environment-independent
/// and the plan is valid for correlated re-executions too.
struct SargablePredicate {
  enum class Kind { kCompare, kIn, kBetween, kLike };
  Kind kind = Kind::kCompare;
  int conjunct = -1;    ///< index into the block's conjunct list
  int attr_index = -1;  ///< attribute within the table's relation
  std::string op;       ///< kCompare: "=", "<>", "<", "<=", ">", ">="
  std::vector<storage::Value> values;  ///< operand / IN list / [low, high]
  std::string like_pattern;            ///< kLike
  char like_escape = '\0';
  size_t estimated_rows = 0;  ///< exact match count from the column index
};

/// Access path for one FROM entry.
struct TablePlan {
  int from_index = -1;  ///< position in the statement's FROM list
  int relation_id = -1;
  std::string binding_lower;
  bool index_scan = false;
  /// Conjuncts answered by the index (row_ids is their intersection).
  /// When the scan is chosen instead, these demote into `pushed`.
  std::vector<SargablePredicate> sargable;
  /// Conjunct indices evaluated once per base row, below the join.
  std::vector<int> pushed;
  /// When the scan is chosen, the demoted sargable conjuncts are retained
  /// here so the scan can keep pruning whole chunks against the per-chunk
  /// statistics (the conjuncts are also in `pushed` for per-row residue).
  std::vector<SargablePredicate> prunable;
  /// Per-chunk prune verdicts from the chunk statistics, computed at plan
  /// time *before* any index is consulted (valid while ReadLock is held);
  /// 1 = no row of the chunk can pass the sargable conjuncts. Empty when the
  /// table has no sargable conjuncts.
  std::vector<char> pruned_chunks;
  size_t chunks_total = 0;
  size_t chunks_pruned = 0;
  /// IndexScan row positions (ascending), materialized at plan time — valid
  /// while Database::ReadLock() is held (see the staleness contract in
  /// column_index.h).
  std::vector<uint32_t> row_ids;
  size_t table_rows = 0;
  size_t estimated_rows = 0;  ///< post-pushdown cardinality estimate
  /// Rows a scan would actually read: table rows minus rows in chunks the
  /// statistics pass pruned (equals table_rows when nothing was prunable).
  size_t scan_rows = 0;
  double selectivity = 1.0;   ///< estimated_rows / table_rows
  /// Attribute eligible for an index nested-loop join: this table has no
  /// IndexScan, but joins to an earlier fold step through `attr = attr` on
  /// this column, so the executor may probe the column index once per
  /// accumulated row instead of scanning. -1 when ineligible; the executor
  /// still falls back to scan + hash join when the accumulated side is large.
  int index_join_attr = -1;
  /// Join algorithm for the fold step that places this table, chosen by the
  /// cost model. kNone (the greedy/legacy path) defers to the executor's
  /// runtime heuristics. The first fold step is always kNone (nothing to
  /// join against yet).
  JoinAlgo join_algo = JoinAlgo::kNone;
  /// Cost model estimates for EXPLAIN and q-error reporting: cumulative
  /// estimated rows and cost after this table's fold step. Negative when the
  /// cost model did not run (use_cost_model off).
  double est_rows_cumulative = -1.0;
  double est_cost_cumulative = -1.0;
};

/// col = col conjunct across two FROM entries — a hash-join key edge,
/// applied at the fold step where the later side is placed.
struct PlannedEquiJoin {
  int conjunct = -1;
  int left_from = -1;
  int left_attr = -1;
  int right_from = -1;
  int right_attr = -1;
};

/// Multi-table conjunct that is not an equi-key: evaluated on the combined
/// row at the fold step where its last table is placed.
struct PlannedJoinFilter {
  int conjunct = -1;
  std::vector<int> tables;  ///< FROM positions referenced
};

/// The access-path plan of one query block. `usable = false` means the
/// planner bailed (unresolved FROM, duplicate bindings, or a pushdown
/// classification hazard) and the executor must run the legacy fold, whose
/// error surface the planner does not try to reproduce.
struct BlockPlan {
  bool usable = false;
  bool reordered = false;  ///< tables differ from FROM order
  bool cost_based = false;  ///< join order/algorithms chosen by the cost model
  /// Estimated rows out of the join fold (before the post-join residual
  /// filter); the q-error denominator. Negative when the cost model did not
  /// run.
  double estimated_output_rows = -1.0;
  std::vector<TablePlan> tables;  ///< in join (fold) order
  std::vector<PlannedEquiJoin> equi_joins;
  std::vector<PlannedJoinFilter> join_filters;
  std::vector<int> residual;  ///< conjunct indices for the post-join filter
};

/// One row of the EXPLAIN execution block.
struct TableAccessExplain {
  std::string binding;
  std::string relation;
  bool index_scan = false;
  bool index_join = false;  ///< eligible for an index nested-loop join
  int index_predicates = 0;   ///< conjuncts answered by the index
  int pushed_predicates = 0;  ///< conjuncts evaluated per base row
  size_t table_rows = 0;
  size_t estimated_rows = 0;
  double selectivity = 1.0;
  size_t chunks_total = 0;   ///< chunks in the table at plan time
  size_t chunks_pruned = 0;  ///< chunks the statistics ruled out pre-index
  /// Cost model verdicts (empty/negative when the cost model did not run):
  /// the join algorithm placing this table and the cumulative estimated
  /// rows/cost after its fold step.
  std::string join_algo;
  double est_rows_cumulative = -1.0;
  double est_cost_cumulative = -1.0;
};

/// Flattens a WHERE AND-tree into conjuncts (borrowed pointers). The
/// executor and the planner must agree on conjunct order; both use this.
void SplitConjuncts(const sql::Expr* e, std::vector<const sql::Expr*>& out);

/// True if `name` is one of the five aggregate functions.
bool IsAggregateName(const std::string& name);

/// True if `e` contains an aggregate call outside of any nested subquery.
bool ContainsAggregate(const sql::Expr& e);

/// True if the block's output multiset is provably independent of the join
/// fold order: no LIMIT, and (for aggregate blocks) every output expression
/// reduces to group-by expressions, literals, and order-insensitive
/// aggregates (COUNT/MIN/MAX — SUM and AVG accumulate floats in row order,
/// and bare columns read the group's first-seen representative row).
bool ReorderSafe(const sql::SelectStatement& stmt);

/// Plans one block's access paths: splits per-table sargable conjuncts from
/// residual predicates, probes the column indexes for exact cardinality
/// estimates, picks IndexScan vs Scan per table, and (when safe) orders the
/// fold by ascending estimated cardinality. `conjuncts` is the
/// SplitConjuncts output for stmt.where. The caller must hold
/// Database::ReadLock() — row ids are materialized against the pinned row
/// counts.
BlockPlan PlanBlock(const storage::Database& db,
                    const sql::SelectStatement& stmt,
                    const std::vector<const sql::Expr*>& conjuncts,
                    const ExecConfig& config);

/// The EXPLAIN view of a plan (empty when the plan is unusable — the
/// executor falls back to the naive fold).
std::vector<TableAccessExplain> ExplainPlan(const storage::Database& db,
                                            const BlockPlan& plan);

}  // namespace sfsql::exec

#endif  // SFSQL_EXEC_ACCESS_PATH_H_
