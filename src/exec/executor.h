#ifndef SFSQL_EXEC_EXECUTOR_H_
#define SFSQL_EXEC_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/access_path.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace sfsql::obs {
class Clock;
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace sfsql::obs

namespace sfsql::exec {

/// A materialized query result: column labels plus rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<storage::Row> rows;

  /// Pretty-prints as an ASCII table.
  std::string ToString() const;

  /// Row-multiset equality (ignores row order and column labels); used by the
  /// effectiveness harness to compare a translation's answer against gold.
  bool SameRows(const QueryResult& other) const;
};

/// Everything one Execute call did, reported back to the caller (the engine's
/// profile capture). Unlike Executor::stats(), these are per-call, not
/// cumulative; `access_paths` covers the top-level block only (empty when the
/// planner fell back to the naive fold).
struct ExecInfo {
  ExecStats stats;
  std::vector<TableAccessExplain> access_paths;
  uint64_t rows_returned = 0;
  double seconds = 0.0;
  /// Cost-model estimate vs actual rows out of the top-level block's join
  /// fold, both measured before the post-join residual filter — the q-error
  /// inputs (q = max(est, act) / min(est, act), with both floored at 1).
  /// estimated < 0 means the cost model did not run for this statement.
  double estimated_join_rows = -1.0;
  uint64_t actual_join_rows = 0;
  bool has_join_actuals = false;  ///< true when the planned fold executed
};

/// Evaluates fully specified SQL SELECT statements against an in-memory
/// `Database`. This is the RDBMS substrate of the paper's architecture (Fig. 3):
/// the Standard SQL Composer's output runs here.
///
/// Supported: multi-table FROM with comma joins (hash joins are used for
/// equi-join predicates, nested loops otherwise), WHERE with AND/OR/NOT,
/// comparisons, arithmetic, LIKE, BETWEEN, IN (list and subquery), EXISTS,
/// scalar subqueries (all subqueries may be correlated), aggregation
/// (COUNT/SUM/AVG/MIN/MAX with DISTINCT), GROUP BY, HAVING, ORDER BY,
/// DISTINCT, LIMIT.
///
/// Semantics notes (documented deviations from full SQL):
///  * Two-valued logic: a predicate over NULL operands evaluates to false
///    (NOT of it is true).
///  * Grouping and DISTINCT treat all NULLs as equal.
///
/// Statements containing unresolved schema-free elements are rejected with
/// kExecutionError — translate them first (core/).
///
/// Execution is index-aware: before running a block, an access-path plan
/// (exec/access_path) routes sargable WHERE conjuncts through the per-column
/// indexes and pushes per-table predicates below the join; ExecConfig
/// controls the planner (use_index_scan = false forces the naive fold).
/// Execute holds Database::ReadLock() for its whole duration, which pins row
/// counts so IndexScan row ids stay exactly valid (column_index.h documents
/// the staleness contract) and makes Execute safe to race against inserts.
class Executor {
 public:
  explicit Executor(const storage::Database* db);
  Executor(const storage::Database* db, const ExecConfig& config);
  ~Executor();

  const ExecConfig& config() const { return config_; }
  /// Not safe against concurrent Execute (drops the private pool, if any).
  void set_config(const ExecConfig& config);

  /// Publishes per-execution metrics into `registry`:
  ///   sfsql_execute_total, sfsql_execute_errors_total,
  ///   sfsql_execute_seconds (histogram), sfsql_execute_rows_total,
  ///   sfsql_exec_index_scans_total, sfsql_exec_table_scans_total,
  ///   sfsql_exec_index_joins_total, sfsql_exec_hash_joins_total,
  ///   sfsql_exec_sort_merge_joins_total,
  ///   sfsql_exec_merge_sorts_skipped_total, sfsql_exec_rows_pruned_total,
  ///   sfsql_exec_pushed_predicates_total, sfsql_exec_chunks_pruned_total,
  ///   sfsql_exec_rows_scanned_total.
  /// Null `registry` (the default state) disables metrics entirely; `clock`
  /// overrides the steady clock for the latency histogram (tests).
  void EnableMetrics(obs::MetricsRegistry* registry,
                     const obs::Clock* clock = nullptr);

  /// Runs `stmt` and materializes the result. Non-null `info` additionally
  /// reports this call's stats, latency, result cardinality, and the
  /// top-level block's access paths (for query profiles).
  Result<QueryResult> Execute(const sql::SelectStatement& stmt,
                              ExecInfo* info = nullptr);

  /// Convenience: parse + execute a full SQL string.
  Result<QueryResult> ExecuteSql(std::string_view sql);

  /// Cumulative access-path counters across every Execute on this instance
  /// (atomics inside, so concurrent Executes accumulate safely).
  ExecStats stats() const;

  /// Plans the top-level block of `stmt` under the current config and
  /// returns its EXPLAIN view without executing (empty when the planner
  /// falls back to the naive fold). Takes the database read lock itself.
  std::vector<TableAccessExplain> ExplainAccessPaths(
      const sql::SelectStatement& stmt) const;

 private:
  /// The pool morsel loops run on: config_.pool when wired (the engine's
  /// shared pool), else a lazily created private pool of exec_threads - 1
  /// workers; null when exec_threads <= 1 (no threads ever spawned).
  TaskPool* EffectivePool();

  const storage::Database* db_;
  ExecConfig config_;
  std::mutex pool_mu_;  ///< guards owned_pool_ creation (concurrent Executes)
  std::unique_ptr<TaskPool> owned_pool_;
  const obs::Clock* clock_ = nullptr;
  obs::Counter* execute_total_ = nullptr;
  obs::Counter* execute_errors_ = nullptr;
  obs::Counter* execute_rows_ = nullptr;
  obs::Histogram* execute_seconds_ = nullptr;
  obs::Counter* index_scans_total_ = nullptr;
  obs::Counter* table_scans_total_ = nullptr;
  obs::Counter* index_joins_total_ = nullptr;
  obs::Counter* hash_joins_total_ = nullptr;
  obs::Counter* sort_merge_joins_total_ = nullptr;
  obs::Counter* merge_sorts_skipped_total_ = nullptr;
  obs::Counter* rows_pruned_total_ = nullptr;
  obs::Counter* pushed_predicates_total_ = nullptr;
  obs::Counter* chunks_pruned_total_ = nullptr;
  obs::Counter* rows_scanned_total_ = nullptr;
  std::atomic<uint64_t> index_scans_{0};
  std::atomic<uint64_t> table_scans_{0};
  std::atomic<uint64_t> index_joins_{0};
  std::atomic<uint64_t> hash_joins_{0};
  std::atomic<uint64_t> sort_merge_joins_{0};
  std::atomic<uint64_t> merge_sorts_skipped_{0};
  std::atomic<uint64_t> rows_pruned_{0};
  std::atomic<uint64_t> pushed_predicates_{0};
  std::atomic<uint64_t> chunks_pruned_{0};
  std::atomic<uint64_t> rows_scanned_{0};
};

}  // namespace sfsql::exec

#endif  // SFSQL_EXEC_EXECUTOR_H_
