#include "exec/access_path.h"

#include <algorithm>
#include <optional>

#include "common/strings.h"
#include "exec/cost_model.h"
#include "exec/like.h"
#include "sql/printer.h"

namespace sfsql::exec {

using sql::BinaryOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStatement;
using sql::UnaryOp;
using storage::Value;

void SplitConjuncts(const Expr* e, std::vector<const Expr*>& out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bop == BinaryOp::kAnd) {
    SplitConjuncts(e->lhs.get(), out);
    SplitConjuncts(e->rhs.get(), out);
    return;
  }
  out.push_back(e);
}

bool IsAggregateName(const std::string& name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max");
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall && IsAggregateName(e.function_name)) {
    return true;
  }
  if (e.lhs && ContainsAggregate(*e.lhs)) return true;
  if (e.rhs && ContainsAggregate(*e.rhs)) return true;
  for (const ExprPtr& a : e.args) {
    if (ContainsAggregate(*a)) return true;
  }
  return false;
}

namespace {

/// True if `e`'s value over a group is independent of the order rows entered
/// the group: group-by expressions (matched textually, like EvalGrouped),
/// literals, COUNT/MIN/MAX aggregates, and compositions thereof. Bare
/// columns read the group's first-seen representative row, and SUM/AVG
/// accumulate doubles in row order — both order-sensitive.
bool OrderInsensitive(const Expr& e, const std::vector<std::string>& gb_text) {
  const std::string text = sql::PrintExpr(e);
  for (const std::string& g : gb_text) {
    if (text == g) return true;
  }
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kFunctionCall:
      if (IsAggregateName(e.function_name)) {
        // COUNT is a set size; MIN/MAX are Compare-extrema (ties within a
        // typed column are identical values, appends never reorder a column's
        // type). SUM/AVG accumulate in row order and drift on doubles.
        return EqualsIgnoreCase(e.function_name, "count") ||
               EqualsIgnoreCase(e.function_name, "min") ||
               EqualsIgnoreCase(e.function_name, "max");
      }
      for (const ExprPtr& a : e.args) {
        if (!OrderInsensitive(*a, gb_text)) return false;
      }
      return true;
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
    case ExprKind::kInSubquery:
    case ExprKind::kExistsSubquery:
    case ExprKind::kScalarSubquery:
      return false;
    default:
      if (e.lhs && !OrderInsensitive(*e.lhs, gb_text)) return false;
      if (e.rhs && !OrderInsensitive(*e.rhs, gb_text)) return false;
      for (const ExprPtr& a : e.args) {
        if (!OrderInsensitive(*a, gb_text)) return false;
      }
      return true;
  }
}

}  // namespace

bool ReorderSafe(const SelectStatement& stmt) {
  // LIMIT picks a prefix of the emission order; reordering would change
  // which rows survive.
  if (stmt.limit.has_value()) return false;
  bool has_aggregate = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.select_items) {
    if (ContainsAggregate(*item.expr)) has_aggregate = true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) has_aggregate = true;
  for (const sql::OrderItem& o : stmt.order_by) {
    if (ContainsAggregate(*o.expr)) has_aggregate = true;
  }
  // Non-aggregate blocks are multiset-stable under any fold order (DISTINCT
  // keeps one row per equality class, ORDER BY re-sorts; only tie order can
  // move, which row-multiset semantics ignore).
  if (!has_aggregate) return true;
  std::vector<std::string> gb_text;
  gb_text.reserve(stmt.group_by.size());
  for (const ExprPtr& g : stmt.group_by) {
    gb_text.push_back(sql::PrintExpr(*g));
  }
  for (const sql::SelectItem& item : stmt.select_items) {
    if (!OrderInsensitive(*item.expr, gb_text)) return false;
  }
  if (stmt.having && !OrderInsensitive(*stmt.having, gb_text)) return false;
  for (const sql::OrderItem& o : stmt.order_by) {
    if (!OrderInsensitive(*o.expr, gb_text)) return false;
  }
  return true;
}

namespace {

struct PlannerSlot {
  std::string binding_lower;
  int relation_id = -1;
};

enum class Resolution { kOk, kNotFound, kAmbiguous, kError };

/// Mirrors BlockExecutor::ResolveInSchema over the planner's slot list:
/// same exactness requirements, same qualified-vs-bare lookup, and the same
/// NotFound / error distinction (an attribute missing from a named relation
/// is an error, not NotFound).
Resolution ResolveRef(const catalog::Catalog& catalog,
                      const std::vector<PlannerSlot>& slots,
                      const sql::NameRef& relation,
                      const sql::NameRef& attribute, int* table, int* attr) {
  if (!attribute.exact() || (relation.specified() && !relation.exact())) {
    return Resolution::kError;
  }
  if (relation.specified()) {
    const std::string want = ToLower(relation.name);
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].binding_lower != want) continue;
      int idx = catalog.relation(slots[i].relation_id)
                    .AttributeIndex(attribute.name);
      if (idx < 0) return Resolution::kError;
      *table = static_cast<int>(i);
      *attr = idx;
      return Resolution::kOk;
    }
    return Resolution::kNotFound;
  }
  int found_table = -1, found_attr = -1;
  for (size_t i = 0; i < slots.size(); ++i) {
    int idx =
        catalog.relation(slots[i].relation_id).AttributeIndex(attribute.name);
    if (idx < 0) continue;
    if (found_table >= 0) return Resolution::kAmbiguous;
    found_table = static_cast<int>(i);
    found_attr = idx;
  }
  if (found_table < 0) return Resolution::kNotFound;
  *table = found_table;
  *attr = found_attr;
  return Resolution::kOk;
}

/// What one conjunct's column references add up to against a slot list.
struct RefScan {
  bool resolved = true;    ///< every ref resolved within the slots
  bool ambiguous = false;  ///< some bare ref matched several slots
  bool opaque = false;     ///< contains a subquery or star (never pushable)
  std::vector<char> used;  ///< per-slot: referenced by some resolved ref
};

void ScanRefs(const Expr& e, const catalog::Catalog& catalog,
              const std::vector<PlannerSlot>& slots, RefScan& scan) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      int table = -1, attr = -1;
      switch (ResolveRef(catalog, slots, e.relation, e.attribute, &table,
                         &attr)) {
        case Resolution::kOk:
          scan.used[table] = 1;
          break;
        case Resolution::kAmbiguous:
          scan.resolved = false;
          scan.ambiguous = true;
          break;
        default:
          scan.resolved = false;
          break;
      }
      return;
    }
    case ExprKind::kInSubquery:
    case ExprKind::kExistsSubquery:
    case ExprKind::kScalarSubquery:
    case ExprKind::kStar:
      scan.opaque = true;
      return;
    default:
      break;
  }
  if (e.lhs) ScanRefs(*e.lhs, catalog, slots, scan);
  if (e.rhs) ScanRefs(*e.rhs, catalog, slots, scan);
  for (const ExprPtr& a : e.args) {
    ScanRefs(*a, catalog, slots, scan);
  }
}

RefScan ScanConjunct(const Expr& e, const catalog::Catalog& catalog,
                     const std::vector<PlannerSlot>& slots) {
  RefScan scan;
  scan.used.assign(slots.size(), 0);
  ScanRefs(e, catalog, slots, scan);
  return scan;
}

/// The literal value of `e`, folding a unary minus over a numeric or NULL
/// literal (what Eval would produce); nullopt when `e` is not a literal
/// (or would type-error, e.g. -'text').
std::optional<Value> LiteralOf(const Expr& e) {
  if (e.kind == ExprKind::kLiteral) return e.literal;
  if (e.kind == ExprKind::kUnary && e.uop == UnaryOp::kNeg && e.lhs &&
      e.lhs->kind == ExprKind::kLiteral) {
    const Value& v = e.lhs->literal;
    if (v.is_null()) return Value::Null_();
    if (v.is_int()) return Value::Int(-v.AsInt());
    if (v.is_double()) return Value::Double(-v.AsDouble());
  }
  return std::nullopt;
}

const char* CompareOpString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    default: return nullptr;
  }
}

/// `lit op col` rewritten as `col op' lit`.
const char* FlipOp(const char* op) {
  if (op[0] == '<' && op[1] == '\0') return ">";
  if (op[0] == '>' && op[1] == '\0') return "<";
  if (op[0] == '<' && op[1] == '=') return ">=";
  if (op[0] == '>' && op[1] == '=') return "<=";
  return op;  // = and <> are symmetric
}

/// True if a scan comparing every non-null value of a column declared as
/// `declared` against `lit` with an inequality operator cannot type-error
/// (Insert enforces runtime type == declared type).
bool InequalityClassMatches(catalog::ValueType declared, const Value& lit) {
  switch (declared) {
    case catalog::ValueType::kBool: return lit.is_bool();
    case catalog::ValueType::kInt64:
    case catalog::ValueType::kDouble: return lit.is_numeric();
    case catalog::ValueType::kString: return lit.is_string();
    default: return false;
  }
}

/// An always-empty sargable predicate ("col = NULL" shape): both the count
/// and row-id paths return nothing, matching two-valued-logic scans.
SargablePredicate EmptyPredicate(int conjunct, int attr) {
  SargablePredicate p;
  p.kind = SargablePredicate::Kind::kCompare;
  p.conjunct = conjunct;
  p.attr_index = attr;
  p.op = "=";
  p.values.push_back(Value::Null_());
  return p;
}

/// Tries to turn a fully-local single-table conjunct into a predicate the
/// column index answers exactly — with the same result multiset and the
/// same (absence of) type errors as evaluating it per row. `*table_out`
/// receives the slot the predicate binds to.
std::optional<SargablePredicate> TryExtractSargable(
    const Expr& c, int conjunct, const catalog::Catalog& catalog,
    const std::vector<PlannerSlot>& slots, int* table_out) {
  auto resolve = [&](const Expr& col, int* table, int* attr) {
    return col.kind == ExprKind::kColumnRef &&
           ResolveRef(catalog, slots, col.relation, col.attribute, table,
                      attr) == Resolution::kOk;
  };
  if (c.kind == ExprKind::kBinary && c.bop == BinaryOp::kLike) {
    int table = -1, attr = -1;
    if (!c.lhs || !c.rhs || !resolve(*c.lhs, &table, &attr)) {
      return std::nullopt;
    }
    std::optional<Value> pattern = LiteralOf(*c.rhs);
    if (!pattern.has_value()) return std::nullopt;
    *table_out = table;
    if (pattern->is_null()) return EmptyPredicate(conjunct, attr);
    const catalog::ValueType declared =
        catalog.relation(slots[table].relation_id).attributes[attr].type;
    // A non-string column (or pattern) type-errors on the first non-null
    // row — leave it to per-row evaluation.
    if (!pattern->is_string() || declared != catalog::ValueType::kString) {
      return std::nullopt;
    }
    SargablePredicate p;
    p.kind = SargablePredicate::Kind::kLike;
    p.conjunct = conjunct;
    p.attr_index = attr;
    p.like_pattern = pattern->AsString();
    p.like_escape = LikeEscapeChar(c.like_escape);
    return p;
  }
  if (c.kind == ExprKind::kBinary) {
    const char* op = CompareOpString(c.bop);
    if (op == nullptr || !c.lhs || !c.rhs) return std::nullopt;
    int table = -1, attr = -1;
    std::optional<Value> lit;
    if (resolve(*c.lhs, &table, &attr)) {
      lit = LiteralOf(*c.rhs);
    } else if (resolve(*c.rhs, &table, &attr)) {
      lit = LiteralOf(*c.lhs);
      if (lit.has_value()) op = FlipOp(op);
    }
    if (!lit.has_value()) return std::nullopt;
    *table_out = table;
    if (lit->is_null()) return EmptyPredicate(conjunct, attr);
    const bool equality = op[0] == '=' || (op[0] == '<' && op[1] == '>');
    if (!equality) {
      // Inequalities type-error on incomparable operands; only push them to
      // the index when the scan could not have errored.
      const catalog::ValueType declared =
          catalog.relation(slots[table].relation_id).attributes[attr].type;
      if (!InequalityClassMatches(declared, *lit)) return std::nullopt;
    }
    SargablePredicate p;
    p.kind = SargablePredicate::Kind::kCompare;
    p.conjunct = conjunct;
    p.attr_index = attr;
    p.op = op;
    p.values.push_back(std::move(*lit));
    return p;
  }
  if (c.kind == ExprKind::kBetween && !c.negated) {
    int table = -1, attr = -1;
    if (!c.lhs || c.args.size() != 2 || !resolve(*c.lhs, &table, &attr)) {
      return std::nullopt;
    }
    std::optional<Value> low = LiteralOf(*c.args[0]);
    std::optional<Value> high = LiteralOf(*c.args[1]);
    if (!low.has_value() || !high.has_value()) return std::nullopt;
    *table_out = table;
    SargablePredicate p;
    p.kind = SargablePredicate::Kind::kBetween;
    p.conjunct = conjunct;
    p.attr_index = attr;
    p.values = {std::move(*low), std::move(*high)};
    return p;
  }
  if (c.kind == ExprKind::kInList && !c.negated) {
    int table = -1, attr = -1;
    if (!c.lhs || !resolve(*c.lhs, &table, &attr)) return std::nullopt;
    std::vector<Value> items;
    items.reserve(c.args.size());
    for (const ExprPtr& item : c.args) {
      std::optional<Value> v = LiteralOf(*item);
      if (!v.has_value()) return std::nullopt;
      items.push_back(std::move(*v));
    }
    *table_out = table;
    SargablePredicate p;
    p.kind = SargablePredicate::Kind::kIn;
    p.conjunct = conjunct;
    p.attr_index = attr;
    p.values = std::move(items);
    return p;
  }
  return std::nullopt;
}

std::vector<uint32_t> IntersectSorted(std::vector<uint32_t> a,
                                      const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

BlockPlan PlanBlock(const storage::Database& db, const SelectStatement& stmt,
                    const std::vector<const Expr*>& conjuncts,
                    const ExecConfig& config) {
  BlockPlan plan;
  const catalog::Catalog& catalog = db.catalog();
  if (stmt.from.empty()) return plan;  // nothing to scan; legacy path is fine

  // FROM entries -> planner slots. Anything the legacy fold would reject
  // (unresolved names, duplicate bindings) stays on the legacy path so its
  // exact error surfaces.
  std::vector<PlannerSlot> slots;
  slots.reserve(stmt.from.size());
  for (const sql::TableRef& ref : stmt.from) {
    if (!ref.relation.exact()) return plan;
    Result<int> rel_id = catalog.FindRelation(ref.relation.name);
    if (!rel_id.ok()) return plan;
    PlannerSlot slot;
    slot.binding_lower = ToLower(ref.BindingName());
    slot.relation_id = *rel_id;
    for (const PlannerSlot& existing : slots) {
      if (existing.binding_lower == slot.binding_lower) return plan;
    }
    slots.push_back(std::move(slot));
  }

  // Classify every conjunct against the full FROM schema.
  const size_t n = slots.size();
  std::vector<TablePlan> tables(n);
  for (size_t t = 0; t < n; ++t) {
    tables[t].from_index = static_cast<int>(t);
    tables[t].relation_id = slots[t].relation_id;
    tables[t].binding_lower = slots[t].binding_lower;
    tables[t].table_rows = db.table(slots[t].relation_id).num_rows();
  }
  std::vector<int> constants;  // table-independent conjuncts
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    const Expr& c = *conjuncts[ci];
    RefScan scan = ScanConjunct(c, catalog, slots);
    if (scan.opaque) {
      plan.residual.push_back(static_cast<int>(ci));
      continue;
    }
    if (!scan.resolved) {
      if (scan.ambiguous) {
        // Hazard: a bare ref ambiguous in the full schema may still resolve
        // in a proper prefix of the original FROM order — the legacy fold
        // would push the conjunct there with that prefix's binding. Don't
        // replicate the quirk; run the legacy fold.
        for (size_t len = 1; len < n; ++len) {
          std::vector<PlannerSlot> prefix(slots.begin(),
                                          slots.begin() + len);
          RefScan sub = ScanConjunct(c, catalog, prefix);
          if (sub.resolved && !sub.opaque) return plan;
        }
      }
      // Correlated or erroneous refs: the post-join filter evaluates them
      // against the full environment, same as the legacy fold.
      plan.residual.push_back(static_cast<int>(ci));
      continue;
    }
    std::vector<int> used;
    for (size_t t = 0; t < n; ++t) {
      if (scan.used[t]) used.push_back(static_cast<int>(t));
    }
    if (used.empty()) {
      constants.push_back(static_cast<int>(ci));
      continue;
    }
    if (used.size() == 1) {
      int table = -1;
      std::optional<SargablePredicate> sarg =
          TryExtractSargable(c, static_cast<int>(ci), catalog, slots, &table);
      if (sarg.has_value()) {
        tables[table].sargable.push_back(std::move(*sarg));
      } else {
        tables[used[0]].pushed.push_back(static_cast<int>(ci));
      }
      continue;
    }
    if (used.size() == 2 && c.kind == ExprKind::kBinary &&
        c.bop == BinaryOp::kEq && c.lhs &&
        c.lhs->kind == ExprKind::kColumnRef && c.rhs &&
        c.rhs->kind == ExprKind::kColumnRef) {
      int lt = -1, la = -1, rt = -1, ra = -1;
      if (ResolveRef(catalog, slots, c.lhs->relation, c.lhs->attribute, &lt,
                     &la) == Resolution::kOk &&
          ResolveRef(catalog, slots, c.rhs->relation, c.rhs->attribute, &rt,
                     &ra) == Resolution::kOk &&
          lt != rt) {
        PlannedEquiJoin edge;
        edge.conjunct = static_cast<int>(ci);
        edge.left_from = lt;
        edge.left_attr = la;
        edge.right_from = rt;
        edge.right_attr = ra;
        plan.equi_joins.push_back(edge);
        continue;
      }
    }
    PlannedJoinFilter filter;
    filter.conjunct = static_cast<int>(ci);
    filter.tables = std::move(used);
    plan.join_filters.push_back(std::move(filter));
  }

  // Access path per table. Chunk-statistics pruning runs FIRST — a chunk
  // whose per-column min/max cannot satisfy some sargable conjunct drops out
  // before any column index is consulted (pruning order: chunk stats ->
  // index -> residual). Only then are the indexes probed for exact
  // cardinality estimates; row ids are collected only for chosen IndexScans.
  for (size_t t = 0; t < n; ++t) {
    TablePlan& tp = tables[t];
    const storage::Table& table = db.table(tp.relation_id);
    tp.chunks_total = table.num_chunks();
    tp.scan_rows = tp.table_rows;
    if (tp.sargable.empty()) {
      tp.estimated_rows = tp.table_rows;
      tp.selectivity = 1.0;
      continue;
    }

    tp.pruned_chunks.assign(table.num_chunks(), 0);
    size_t surviving_rows = 0;
    for (size_t c = 0; c < table.num_chunks(); ++c) {
      const storage::Chunk& chunk = table.chunk(c);
      bool pruned = false;
      for (const SargablePredicate& p : tp.sargable) {
        const storage::ChunkStats& st = chunk.stats(p.attr_index);
        switch (p.kind) {
          case SargablePredicate::Kind::kCompare:
            pruned = st.CanPrune(p.op, p.values[0]);
            break;
          case SargablePredicate::Kind::kIn:
            pruned = st.CanPruneIn(p.values);
            break;
          case SargablePredicate::Kind::kBetween:
            pruned = st.CanPruneBetween(p.values[0], p.values[1]);
            break;
          case SargablePredicate::Kind::kLike:
            // Min/max say nothing about pattern matches; only an all-NULL
            // column rules the chunk out.
            pruned = st.all_null();
            break;
        }
        if (pruned) break;
      }
      if (pruned) {
        tp.pruned_chunks[c] = 1;
        ++tp.chunks_pruned;
      } else {
        surviving_rows += chunk.size();
      }
    }
    tp.scan_rows = surviving_rows;

    // Scan path: the sargable conjuncts demote to per-row evaluation but are
    // retained for chunk pruning; the estimate still informs the join order.
    auto demote_to_scan = [&tp](size_t estimate) {
      for (const SargablePredicate& p : tp.sargable) {
        tp.pushed.push_back(p.conjunct);
      }
      tp.prunable = std::move(tp.sargable);
      tp.sargable.clear();
      tp.estimated_rows = estimate;
    };

    if (surviving_rows == 0 && tp.table_rows > 0) {
      // The statistics alone emptied the table — scan the (zero) surviving
      // chunks and skip the index entirely, including its lazy build.
      demote_to_scan(0);
    } else if (!config.use_column_index) {
      demote_to_scan(std::min(surviving_rows, tp.table_rows));
    } else {
      std::vector<std::vector<uint32_t>> like_rows(tp.sargable.size());
      size_t min_estimate = tp.table_rows;
      for (size_t s = 0; s < tp.sargable.size(); ++s) {
        SargablePredicate& p = tp.sargable[s];
        const storage::ColumnIndex* idx =
            db.ColumnIndexFor(tp.relation_id, p.attr_index);
        switch (p.kind) {
          case SargablePredicate::Kind::kCompare:
            p.estimated_rows = idx->CountSatisfying(p.op, p.values[0]);
            break;
          case SargablePredicate::Kind::kIn:
            p.estimated_rows = idx->CountIn(p.values);
            break;
          case SargablePredicate::Kind::kBetween:
            p.estimated_rows = idx->CountBetween(p.values[0], p.values[1]);
            break;
          case SargablePredicate::Kind::kLike:
            // LIKE has no cheap count; materialize once and reuse below.
            like_rows[s] = idx->RowsMatchingLike(p.like_pattern,
                                                 p.like_escape);
            p.estimated_rows = like_rows[s].size();
            break;
        }
        min_estimate = std::min(min_estimate, p.estimated_rows);
      }
      const bool scan_cheaper =
          static_cast<double>(min_estimate) >
          config.max_index_selectivity * static_cast<double>(tp.table_rows);
      if (tp.table_rows == 0 || !scan_cheaper) {
        tp.index_scan = true;
        bool first = true;
        for (size_t s = 0; s < tp.sargable.size(); ++s) {
          const SargablePredicate& p = tp.sargable[s];
          const storage::ColumnIndex* idx =
              db.ColumnIndexFor(tp.relation_id, p.attr_index);
          std::vector<uint32_t> rows;
          switch (p.kind) {
            case SargablePredicate::Kind::kCompare:
              rows = idx->RowsSatisfying(p.op, p.values[0]);
              break;
            case SargablePredicate::Kind::kIn:
              rows = idx->RowsIn(p.values);
              break;
            case SargablePredicate::Kind::kBetween:
              rows = idx->RowsBetween(p.values[0], p.values[1]);
              break;
            case SargablePredicate::Kind::kLike:
              rows = std::move(like_rows[s]);
              break;
          }
          tp.row_ids = first ? std::move(rows)
                             : IntersectSorted(std::move(tp.row_ids), rows);
          first = false;
          if (tp.row_ids.empty()) break;
        }
        tp.estimated_rows = tp.row_ids.size();
      } else {
        demote_to_scan(std::min(min_estimate, surviving_rows));
      }
    }
    tp.selectivity =
        tp.table_rows == 0
            ? 0.0
            : static_cast<double>(tp.estimated_rows) /
                  static_cast<double>(tp.table_rows);
  }

  // Join order. With the cost model on, a left-deep DP searches orders and
  // picks the join algorithm per fold step (exec/cost_model); otherwise the
  // legacy greedy order applies: cheapest estimated cardinality first,
  // preferring tables connected to the placed set by an equi edge (keeps the
  // fold a hash join instead of a cross product). Original FROM order when
  // reordering is off or the block's output could depend on emission order.
  std::vector<int> order(n);
  for (size_t t = 0; t < n; ++t) order[t] = static_cast<int>(t);
  const bool reorder_ok = config.reorder_joins && n > 1 && ReorderSafe(stmt);
  std::vector<JoinStepEstimate> cost_steps;
  if (config.use_cost_model) {
    // Sort-merge emits in key order, so it needs the same order-insensitivity
    // guarantee as reordering.
    JoinOrderPlan cost =
        PlanJoinOrder(db, tables, plan.equi_joins, config,
                      /*allow_reorder=*/reorder_ok,
                      /*allow_sort_merge=*/reorder_ok);
    for (size_t t = 0; t < n; ++t) {
      if (cost.order[t] != order[t]) plan.reordered = true;
    }
    order = std::move(cost.order);
    cost_steps = std::move(cost.steps);
    plan.cost_based = true;
    // The fold also applies multi-table non-equi filters; discount each by
    // the default selectivity so the block-level output estimate (the
    // q-error numerator) accounts for them.
    plan.estimated_output_rows = cost.output_rows;
    for (size_t i = 0; i < plan.join_filters.size(); ++i) {
      plan.estimated_output_rows /= 3.0;
    }
  } else if (reorder_ok) {
    std::vector<std::vector<int>> adjacent(n);
    for (const PlannedEquiJoin& e : plan.equi_joins) {
      adjacent[e.left_from].push_back(e.right_from);
      adjacent[e.right_from].push_back(e.left_from);
    }
    std::vector<char> placed(n, 0);
    std::vector<int> greedy;
    greedy.reserve(n);
    while (greedy.size() < n) {
      int best = -1;
      bool best_connected = false;
      for (size_t t = 0; t < n; ++t) {
        if (placed[t]) continue;
        bool connected = false;
        for (int other : adjacent[t]) {
          if (placed[other]) connected = true;
        }
        if (greedy.empty()) connected = false;
        const bool better =
            best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             tables[t].estimated_rows < tables[best].estimated_rows);
        if (better) {
          best = static_cast<int>(t);
          best_connected = connected;
        }
      }
      placed[best] = 1;
      greedy.push_back(best);
    }
    for (size_t t = 0; t < n; ++t) {
      if (greedy[t] != order[t]) plan.reordered = true;
    }
    order = std::move(greedy);
  }

  plan.tables.reserve(n);
  for (int t : order) plan.tables.push_back(std::move(tables[t]));
  for (size_t t = 0; t < cost_steps.size(); ++t) {
    plan.tables[t].join_algo = cost_steps[t].algo;
    plan.tables[t].est_rows_cumulative = cost_steps[t].rows;
    plan.tables[t].est_cost_cumulative = cost_steps[t].cost;
  }
  // Table-independent conjuncts gate the whole result; evaluate them on the
  // first (cheapest) table's base rows.
  for (int ci : constants) plan.tables[0].pushed.push_back(ci);

  // Mark index nested-loop join candidates: a table without an IndexScan that
  // joins to an earlier fold step through an equi edge can be answered by
  // probing its column index per accumulated join key instead of scanning.
  // The probe column is the first such edge's attribute on this table; the
  // executor verifies any further edges per probed row.
  std::vector<int> step_of(n, -1);
  for (size_t t = 0; t < n; ++t) step_of[plan.tables[t].from_index] = t;
  for (size_t t = 1; config.use_column_index && t < n; ++t) {
    TablePlan& tp = plan.tables[t];
    if (tp.index_scan) continue;
    for (const PlannedEquiJoin& e : plan.equi_joins) {
      const int ts = static_cast<int>(t);
      if (step_of[e.left_from] == ts && step_of[e.right_from] < ts) {
        tp.index_join_attr = e.left_attr;
      } else if (step_of[e.right_from] == ts && step_of[e.left_from] < ts) {
        tp.index_join_attr = e.right_attr;
      }
      if (tp.index_join_attr >= 0) break;
    }
  }

  plan.usable = true;
  return plan;
}

std::vector<TableAccessExplain> ExplainPlan(const storage::Database& db,
                                            const BlockPlan& plan) {
  std::vector<TableAccessExplain> out;
  if (!plan.usable) return out;
  out.reserve(plan.tables.size());
  for (const TablePlan& tp : plan.tables) {
    TableAccessExplain e;
    e.binding = tp.binding_lower;
    e.relation = db.catalog().relation(tp.relation_id).name;
    e.index_scan = tp.index_scan;
    e.index_join = tp.index_join_attr >= 0;
    e.index_predicates = static_cast<int>(tp.sargable.size());
    e.pushed_predicates = static_cast<int>(tp.pushed.size());
    e.table_rows = tp.table_rows;
    e.estimated_rows = tp.estimated_rows;
    e.selectivity = tp.selectivity;
    e.chunks_total = tp.chunks_total;
    e.chunks_pruned = tp.chunks_pruned;
    e.join_algo = JoinAlgoName(tp.join_algo);
    e.est_rows_cumulative = tp.est_rows_cumulative;
    e.est_cost_cumulative = tp.est_cost_cumulative;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace sfsql::exec
