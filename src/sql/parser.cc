#include "sql/parser.h"

#include <utility>

#include "common/macros.h"
#include "common/strings.h"
#include "obs/trace.h"
#include "sql/lexer.h"

namespace sfsql::sql {

namespace {

/// Identifiers with structural meaning; they cannot be used bare as column or
/// relation names (quote-free SQL keyword handling, kept deliberately small).
constexpr std::string_view kReservedWords[] = {
    "select", "from",  "where",   "group",  "by",     "having", "order",
    "asc",    "desc",  "and",     "or",     "not",    "in",     "exists",
    "between", "like", "escape",  "is",     "null",   "as",     "distinct",
    "limit",  "true",  "false",   "union",
};

bool IsReserved(std::string_view word) {
  for (std::string_view kw : kReservedWords) {
    if (EqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectPtr> ParseStatement() {
    SFSQL_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSelectBlock());
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error(StrCat("unexpected trailing input '", Peek().text, "'"));
    }
    return stmt;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool ConsumeSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(std::string msg) const {
    return Status::ParseError(
        StrCat(msg, " (at position ", Peek().position, ")"));
  }
  Status ExpectSymbol(std::string_view s) {
    if (!ConsumeSymbol(s)) {
      return Error(StrCat("expected '", s, "', found '", Peek().text, "'"));
    }
    return Status::OK();
  }

  NameRef FreshAnonymous() {
    return NameRef::Anonymous(StrCat("#", ++anon_counter_));
  }

  /// Parses one name element: IDENT, IDENT?, ?x, or ?.
  Result<NameRef> ParseNameElement() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIdentifier:
        if (IsReserved(t.text)) {
          return Error(StrCat("unexpected keyword '", t.text, "'"));
        }
        return NameRef::Exact(Advance().text);
      case TokenType::kVagueIdentifier:
        return NameRef::Vague(Advance().text);
      case TokenType::kPlaceholder:
        return NameRef::Placeholder(Advance().text);
      case TokenType::kAnonymousMark:
        Advance();
        return FreshAnonymous();
      default:
        return Error(StrCat("expected a name, found '", t.text, "'"));
    }
  }

  bool AtNameElement() const {
    const Token& t = Peek();
    return (t.type == TokenType::kIdentifier && !IsReserved(t.text)) ||
           t.type == TokenType::kVagueIdentifier ||
           t.type == TokenType::kPlaceholder ||
           t.type == TokenType::kAnonymousMark;
  }

  Result<SelectPtr> ParseSelectBlock() {
    if (!ConsumeKeyword("select")) {
      return Error("expected SELECT");
    }
    auto stmt = std::make_unique<SelectStatement>();
    stmt->distinct = ConsumeKeyword("distinct");

    // Select list.
    do {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.expr = Expr::Star();
      } else {
        SFSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("as")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier &&
                   !IsReserved(Peek().text)) {
          item.alias = Advance().text;
        }
      }
      stmt->select_items.push_back(std::move(item));
    } while (ConsumeSymbol(","));

    if (ConsumeKeyword("from")) {
      // FROM may be legally empty in schema-free SQL only by omitting the whole
      // clause; once present it must list at least one table.
      do {
        TableRef ref;
        SFSQL_ASSIGN_OR_RETURN(ref.relation, ParseNameElement());
        if (ConsumeKeyword("as")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected alias after AS");
          }
          ref.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier &&
                   !IsReserved(Peek().text)) {
          ref.alias = Advance().text;
        }
        stmt->from.push_back(std::move(ref));
      } while (ConsumeSymbol(","));
    }

    if (ConsumeKeyword("where")) {
      SFSQL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (Peek().IsKeyword("group")) {
      Advance();
      if (!ConsumeKeyword("by")) return Error("expected BY after GROUP");
      do {
        SFSQL_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        stmt->group_by.push_back(std::move(g));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeKeyword("having")) {
      SFSQL_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (Peek().IsKeyword("order")) {
      Advance();
      if (!ConsumeKeyword("by")) return Error("expected BY after ORDER");
      do {
        OrderItem item;
        SFSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("desc")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeKeyword("limit")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = Advance().int_value;
    }
    return stmt;
  }

  // Precedence: OR < AND < NOT < predicate (comparisons, IN, BETWEEN, LIKE,
  // IS NULL) < additive < multiplicative < unary minus < primary.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SFSQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("or")) {
      Advance();
      SFSQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SFSQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      SFSQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Peek().IsKeyword("not")) {
      Advance();
      SFSQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    SFSQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    bool negated = false;
    if (Peek().IsKeyword("not") &&
        (Peek(1).IsKeyword("in") || Peek(1).IsKeyword("between") ||
         Peek(1).IsKeyword("like"))) {
      Advance();
      negated = true;
    }

    if (Peek().IsKeyword("in")) {
      Advance();
      SFSQL_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->lhs = std::move(lhs);
      e->negated = negated;
      if (Peek().IsKeyword("select")) {
        SFSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelectBlock());
        e->kind = ExprKind::kInSubquery;
      } else {
        e->kind = ExprKind::kInList;
        do {
          SFSQL_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
          e->args.push_back(std::move(item));
        } while (ConsumeSymbol(","));
      }
      SFSQL_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }

    if (Peek().IsKeyword("between")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->lhs = std::move(lhs);
      e->negated = negated;
      SFSQL_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
      if (!ConsumeKeyword("and")) return Error("expected AND in BETWEEN");
      SFSQL_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
      e->args.push_back(std::move(low));
      e->args.push_back(std::move(high));
      return ExprPtr(std::move(e));
    }

    if (Peek().IsKeyword("like")) {
      Advance();
      SFSQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr cmp = Expr::Binary(BinaryOp::kLike, std::move(lhs), std::move(rhs));
      if (ConsumeKeyword("escape")) {
        if (Peek().type != TokenType::kStringLiteral ||
            Peek().text.size() != 1) {
          return Error("ESCAPE requires a single-character string literal");
        }
        cmp->like_escape = Advance().text;
      }
      if (negated) cmp = Expr::Unary(UnaryOp::kNot, std::move(cmp));
      return cmp;
    }

    if (Peek().IsKeyword("is")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->lhs = std::move(lhs);
      e->negated = ConsumeKeyword("not");
      if (!ConsumeKeyword("null")) return Error("expected NULL after IS");
      return ExprPtr(std::move(e));
    }

    static constexpr std::pair<std::string_view, BinaryOp> kCompares[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (auto [sym, op] : kCompares) {
      if (Peek().IsSymbol(sym)) {
        Advance();
        SFSQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    SFSQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      BinaryOp op = Peek().IsSymbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      SFSQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SFSQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") || Peek().IsSymbol("%")) {
      BinaryOp op = Peek().IsSymbol("*")   ? BinaryOp::kMul
                    : Peek().IsSymbol("/") ? BinaryOp::kDiv
                                           : BinaryOp::kMod;
      Advance();
      SFSQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      SFSQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral:
        return Expr::Literal(storage::Value::Int(Advance().int_value));
      case TokenType::kDoubleLiteral:
        return Expr::Literal(storage::Value::Double(Advance().double_value));
      case TokenType::kStringLiteral:
        return Expr::Literal(storage::Value::String(Advance().text));
      default:
        break;
    }
    if (t.IsKeyword("true")) {
      Advance();
      return Expr::Literal(storage::Value::Bool(true));
    }
    if (t.IsKeyword("false")) {
      Advance();
      return Expr::Literal(storage::Value::Bool(false));
    }
    if (t.IsKeyword("null")) {
      Advance();
      return Expr::Literal(storage::Value::Null_());
    }
    if (t.IsKeyword("exists")) {
      Advance();
      SFSQL_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kExistsSubquery;
      SFSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelectBlock());
      SFSQL_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExprPtr(std::move(e));
    }
    if (t.IsSymbol("(")) {
      Advance();
      if (Peek().IsKeyword("select")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kScalarSubquery;
        SFSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelectBlock());
        SFSQL_RETURN_IF_ERROR(ExpectSymbol(")"));
        return ExprPtr(std::move(e));
      }
      SFSQL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      SFSQL_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }

    // Function call: exact identifier immediately followed by '('.
    if (t.type == TokenType::kIdentifier && !IsReserved(t.text) &&
        Peek(1).IsSymbol("(")) {
      std::string name = Advance().text;
      Advance();  // '('
      bool distinct = ConsumeKeyword("distinct");
      std::vector<ExprPtr> args;
      if (Peek().IsSymbol("*")) {
        Advance();
        args.push_back(Expr::Star());
      } else if (!Peek().IsSymbol(")")) {
        do {
          SFSQL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (ConsumeSymbol(","));
      }
      SFSQL_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Expr::Call(std::move(name), std::move(args), distinct);
    }

    if (AtNameElement()) {
      SFSQL_ASSIGN_OR_RETURN(NameRef first, ParseNameElement());
      if (ConsumeSymbol(".")) {
        if (Peek().IsSymbol("*")) {
          // rel.* — treated as a star restricted to one relation; keep the
          // relation hint on a Star-like column ref.
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kStar;
          e->relation = std::move(first);
          return ExprPtr(std::move(e));
        }
        SFSQL_ASSIGN_OR_RETURN(NameRef attr, ParseNameElement());
        return Expr::Column(std::move(first), std::move(attr));
      }
      return Expr::Column(NameRef::Unspecified(), std::move(first));
    }
    return Error(StrCat("unexpected token '", t.text, "'"));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Result<SelectPtr> ParseSelect(std::string_view input) {
  SFSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SelectPtr> ParseSelect(std::string_view input, obs::Tracer* tracer,
                              int parent_span) {
  if (tracer == nullptr) return ParseSelect(input);
  obs::Tracer::Span span = tracer->StartSpan("parse", parent_span);
  span.Attr("input_bytes", static_cast<long long>(input.size()));
  Result<SelectPtr> out = ParseSelect(input);
  span.Attr("ok", out.ok() ? "true" : "false");
  return out;
}

}  // namespace sfsql::sql
