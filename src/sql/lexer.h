#ifndef SFSQL_SQL_LEXER_H_
#define SFSQL_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace sfsql::sql {

/// Token categories produced by the lexer. The schema-free extensions of §2.1
/// surface here: `foo?` lexes as one kVagueIdentifier token, `?x` as one
/// kPlaceholder token, and a bare `?` as kAnonymousMark.
enum class TokenType {
  kIdentifier,       ///< foo
  kVagueIdentifier,  ///< foo?   (user guesses the name is foo)
  kPlaceholder,      ///< ?x     (unknown name bound to variable x)
  kAnonymousMark,    ///< ?      (unknown name, fresh variable)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kSymbol,  ///< operators and punctuation, text holds the symbol ("<=", "(", ...)
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      ///< identifier/symbol text or raw literal text
  int64_t int_value = 0;
  double double_value = 0.0;
  int position = 0;  ///< byte offset in the input, for error messages

  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
  /// Case-insensitive keyword check against an exact identifier token.
  bool IsKeyword(std::string_view kw) const;
};

/// Lexes `input` into tokens (always terminated by a kEnd token), or a parse
/// error with byte position on malformed input (unterminated string, bad number).
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace sfsql::sql

#endif  // SFSQL_SQL_LEXER_H_
