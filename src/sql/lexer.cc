#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace sfsql::sql {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      tok.text = std::string(input.substr(start, i - start));
      if (i < n && input[i] == '?') {
        ++i;
        tok.type = TokenType::kVagueIdentifier;
      } else {
        tok.type = TokenType::kIdentifier;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '?') {
      ++i;
      if (i < n && IsIdentStart(input[i])) {
        size_t start = i;
        while (i < n && IsIdentChar(input[i])) ++i;
        tok.type = TokenType::kPlaceholder;
        tok.text = std::string(input.substr(start, i - start));
      } else {
        tok.type = TokenType::kAnonymousMark;
        tok.text = "?";
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return Status::ParseError(
              StrCat("malformed number at position ", start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      tok.text = std::string(input.substr(start, i - start));
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      // Both quote styles are accepted as string literals; the paper's examples
      // use double quotes. '' escapes a quote inside a single-quoted string.
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          if (quote == '\'' && i + 1 < n && input[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += input[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrCat("unterminated string literal at position ", tok.position));
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    auto two = (i + 1 < n) ? input.substr(i, 2) : std::string_view();
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(two == "!=" ? "<>" : two);
      tokens.push_back(std::move(tok));
      i += 2;
      continue;
    }
    static constexpr std::string_view kSingles = "=<>+-*/%(),.;";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::ParseError(
        StrCat("unexpected character '", std::string(1, c), "' at position ", i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sfsql::sql
