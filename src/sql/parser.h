#ifndef SFSQL_SQL_PARSER_H_
#define SFSQL_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace sfsql::obs {
class Tracer;
}  // namespace sfsql::obs

namespace sfsql::sql {

/// Parses one (schema-free or full) SQL SELECT statement.
///
/// Full SQL is the degenerate case with every name exact and the FROM clause
/// populated; schema-free SQL may use `foo?`, `?x`, `?` name elements, omit FROM
/// entirely, or mention relations outside FROM (§2.1). A trailing ';' is allowed.
Result<SelectPtr> ParseSelect(std::string_view input);

/// As above, reporting the parse as a span (named "parse", with input size and
/// outcome attributes) under `parent_span` of `tracer`. A null tracer makes
/// this identical to the plain overload.
Result<SelectPtr> ParseSelect(std::string_view input, obs::Tracer* tracer,
                              int parent_span = -1);

}  // namespace sfsql::sql

#endif  // SFSQL_SQL_PARSER_H_
