#ifndef SFSQL_SQL_PARSER_H_
#define SFSQL_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace sfsql::sql {

/// Parses one (schema-free or full) SQL SELECT statement.
///
/// Full SQL is the degenerate case with every name exact and the FROM clause
/// populated; schema-free SQL may use `foo?`, `?x`, `?` name elements, omit FROM
/// entirely, or mention relations outside FROM (§2.1). A trailing ';' is allowed.
Result<SelectPtr> ParseSelect(std::string_view input);

}  // namespace sfsql::sql

#endif  // SFSQL_SQL_PARSER_H_
