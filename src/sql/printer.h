#ifndef SFSQL_SQL_PRINTER_H_
#define SFSQL_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace sfsql::sql {

/// Renders an expression back to SQL text (schema-free markers included, so a
/// parsed query round-trips).
std::string PrintExpr(const Expr& expr);

/// Renders a SELECT statement to a single-line SQL string.
std::string PrintSelect(const SelectStatement& stmt);

}  // namespace sfsql::sql

#endif  // SFSQL_SQL_PRINTER_H_
