#include "sql/canonicalize.h"

#include <utility>

#include "sql/printer.h"

namespace sfsql::sql {

namespace {

void WalkExpr(Expr& e, const std::function<void(Expr&)>& fn);

void WalkStatement(SelectStatement& stmt, const std::function<void(Expr&)>& fn) {
  ForEachTopLevelExpr(stmt, [&](ExprPtr& e) { WalkExpr(*e, fn); });
}

void WalkExpr(Expr& e, const std::function<void(Expr&)>& fn) {
  if (e.kind == ExprKind::kLiteral) fn(e);
  if (e.lhs) WalkExpr(*e.lhs, fn);
  if (e.rhs) WalkExpr(*e.rhs, fn);
  for (ExprPtr& a : e.args) WalkExpr(*a, fn);
  if (e.subquery) WalkStatement(*e.subquery, fn);
}

}  // namespace

void ForEachLiteral(SelectStatement& stmt,
                    const std::function<void(Expr&)>& fn) {
  WalkStatement(stmt, fn);
}

void ForEachLiteral(const SelectStatement& stmt,
                    const std::function<void(const Expr&)>& fn) {
  // The walk never mutates unless `fn` does; const-casting here avoids a
  // duplicate walker for the read-only overload.
  WalkStatement(const_cast<SelectStatement&>(stmt),
                [&](Expr& e) { fn(e); });
}

uint64_t FingerprintBytes(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

int DecodeSlot(const storage::Value& v) {
  if (v.is_int()) {
    return v.AsInt() >= 0 && v.AsInt() <= 1 << 20
               ? static_cast<int>(v.AsInt())
               : -1;
  }
  if (v.is_double()) {
    double d = v.AsDouble() - 0.5;
    if (d >= 0.0 && d <= 1 << 20 && d == static_cast<double>(static_cast<int>(d))) {
      return static_cast<int>(d);
    }
    return -1;
  }
  if (v.is_string()) {
    const std::string& s = v.AsString();
    if (s.size() < 2 || s[0] != '$') return -1;
    int slot = 0;
    for (size_t i = 1; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return -1;
      slot = slot * 10 + (s[i] - '0');
      if (slot > 1 << 20) return -1;
    }
    return slot;
  }
  return -1;
}

CanonicalQuery Canonicalize(const SelectStatement& stmt) {
  CanonicalQuery out;
  out.statement = stmt.Clone();
  ForEachLiteral(*out.statement, [&](Expr& e) {
    const int slot = static_cast<int>(out.literals.size());
    storage::Value placeholder;
    if (e.literal.is_string()) {
      placeholder = storage::Value::String("$" + std::to_string(slot));
    } else if (e.literal.is_int()) {
      placeholder = storage::Value::Int(slot);
    } else if (e.literal.is_double()) {
      placeholder = storage::Value::Double(slot + 0.5);
    } else {
      return;  // bools and NULLs stay structural
    }
    out.literals.push_back(std::move(e.literal));
    e.literal = std::move(placeholder);
  });
  out.text = PrintSelect(*out.statement);
  out.fingerprint = FingerprintBytes(out.text);
  return out;
}

}  // namespace sfsql::sql
