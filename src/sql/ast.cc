#include "sql/ast.h"

namespace sfsql::sql {

std::string NameRef::ToString() const {
  switch (kind) {
    case NameKind::kUnspecified:
      return "";
    case NameKind::kExact:
      return name;
    case NameKind::kVague:
      return name + "?";
    case NameKind::kPlaceholder:
      return "?" + name;
    case NameKind::kAnonymous:
      return "?";
  }
  return "";
}

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::Literal(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(NameRef relation, NameRef attribute) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->relation = std::move(relation);
  e->attribute = std::move(attribute);
  return e;
}

ExprPtr Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function_name = std::move(name);
  e->args = std::move(args);
  e->distinct = distinct;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->relation = relation;
  e->attribute = attribute;
  e->rt_id = rt_id;
  e->at_index = at_index;
  e->uop = uop;
  e->bop = bop;
  e->like_escape = like_escape;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  e->function_name = function_name;
  e->distinct = distinct;
  for (const ExprPtr& a : args) e->args.push_back(a->Clone());
  if (subquery) e->subquery = subquery->Clone();
  e->negated = negated;
  return e;
}

SelectPtr SelectStatement::Clone() const {
  auto s = std::make_unique<SelectStatement>();
  s->distinct = distinct;
  for (const SelectItem& item : select_items) {
    s->select_items.push_back(SelectItem{item.expr->Clone(), item.alias});
  }
  s->from = from;
  if (where) s->where = where->Clone();
  for (const ExprPtr& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const OrderItem& o : order_by) {
    s->order_by.push_back(OrderItem{o.expr->Clone(), o.ascending});
  }
  s->limit = limit;
  return s;
}

void ForEachTopLevelExpr(SelectStatement& stmt,
                         const std::function<void(ExprPtr&)>& fn) {
  for (SelectItem& item : stmt.select_items) fn(item.expr);
  if (stmt.where) fn(stmt.where);
  for (ExprPtr& g : stmt.group_by) fn(g);
  if (stmt.having) fn(stmt.having);
  for (OrderItem& o : stmt.order_by) fn(o.expr);
}

}  // namespace sfsql::sql
