#include "sql/ast.h"

namespace sfsql::sql {

std::string NameRef::ToString() const {
  switch (kind) {
    case NameKind::kUnspecified:
      return "";
    case NameKind::kExact:
      return name;
    case NameKind::kVague:
      return name + "?";
    case NameKind::kPlaceholder:
      return "?" + name;
    case NameKind::kAnonymous:
      return "?";
  }
  return "";
}

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kLike: return "LIKE";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::Literal(storage::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(NameRef relation, NameRef attribute) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->relation = std::move(relation);
  e->attribute = std::move(attribute);
  return e;
}

ExprPtr Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->uop = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function_name = std::move(name);
  e->args = std::move(args);
  e->distinct = distinct;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->relation = relation;
  e->attribute = attribute;
  e->rt_id = rt_id;
  e->at_index = at_index;
  e->uop = uop;
  e->bop = bop;
  e->like_escape = like_escape;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  e->function_name = function_name;
  e->distinct = distinct;
  for (const ExprPtr& a : args) e->args.push_back(a->Clone());
  if (subquery) e->subquery = subquery->Clone();
  e->negated = negated;
  return e;
}

SelectPtr SelectStatement::Clone() const {
  auto s = std::make_unique<SelectStatement>();
  s->distinct = distinct;
  for (const SelectItem& item : select_items) {
    s->select_items.push_back(SelectItem{item.expr->Clone(), item.alias});
  }
  s->from = from;
  if (where) s->where = where->Clone();
  for (const ExprPtr& g : group_by) s->group_by.push_back(g->Clone());
  if (having) s->having = having->Clone();
  for (const OrderItem& o : order_by) {
    s->order_by.push_back(OrderItem{o.expr->Clone(), o.ascending});
  }
  s->limit = limit;
  return s;
}

bool ExprsEqual(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == ExprKind::kLiteral &&
      (a.literal.type() != b.literal.type() || !a.literal.Equals(b.literal))) {
    return false;
  }
  if (a.relation != b.relation || a.attribute != b.attribute) return false;
  if (a.uop != b.uop || a.bop != b.bop || a.like_escape != b.like_escape) {
    return false;
  }
  if (a.function_name != b.function_name || a.distinct != b.distinct ||
      a.negated != b.negated) {
    return false;
  }
  auto both_or_neither = [](const auto& x, const auto& y) {
    return (x == nullptr) == (y == nullptr);
  };
  if (!both_or_neither(a.lhs, b.lhs) || !both_or_neither(a.rhs, b.rhs) ||
      !both_or_neither(a.subquery, b.subquery)) {
    return false;
  }
  if (a.lhs && !ExprsEqual(*a.lhs, *b.lhs)) return false;
  if (a.rhs && !ExprsEqual(*a.rhs, *b.rhs)) return false;
  if (a.args.size() != b.args.size()) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!ExprsEqual(*a.args[i], *b.args[i])) return false;
  }
  if (a.subquery && !StatementsEqual(*a.subquery, *b.subquery)) return false;
  return true;
}

bool StatementsEqual(const SelectStatement& a, const SelectStatement& b) {
  if (a.distinct != b.distinct || a.limit != b.limit) return false;
  if (a.select_items.size() != b.select_items.size() ||
      a.from.size() != b.from.size() ||
      a.group_by.size() != b.group_by.size() ||
      a.order_by.size() != b.order_by.size()) {
    return false;
  }
  for (size_t i = 0; i < a.select_items.size(); ++i) {
    if (a.select_items[i].alias != b.select_items[i].alias ||
        !ExprsEqual(*a.select_items[i].expr, *b.select_items[i].expr)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.from.size(); ++i) {
    if (a.from[i].relation != b.from[i].relation ||
        a.from[i].alias != b.from[i].alias) {
      return false;
    }
  }
  auto both_or_neither = [](const ExprPtr& x, const ExprPtr& y) {
    return (x == nullptr) == (y == nullptr);
  };
  if (!both_or_neither(a.where, b.where) ||
      !both_or_neither(a.having, b.having)) {
    return false;
  }
  if (a.where && !ExprsEqual(*a.where, *b.where)) return false;
  for (size_t i = 0; i < a.group_by.size(); ++i) {
    if (!ExprsEqual(*a.group_by[i], *b.group_by[i])) return false;
  }
  if (a.having && !ExprsEqual(*a.having, *b.having)) return false;
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (a.order_by[i].ascending != b.order_by[i].ascending ||
        !ExprsEqual(*a.order_by[i].expr, *b.order_by[i].expr)) {
      return false;
    }
  }
  return true;
}

void ForEachTopLevelExpr(SelectStatement& stmt,
                         const std::function<void(ExprPtr&)>& fn) {
  for (SelectItem& item : stmt.select_items) fn(item.expr);
  if (stmt.where) fn(stmt.where);
  for (ExprPtr& g : stmt.group_by) fn(g);
  if (stmt.having) fn(stmt.having);
  for (OrderItem& o : stmt.order_by) fn(o.expr);
}

}  // namespace sfsql::sql
