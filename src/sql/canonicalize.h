#ifndef SFSQL_SQL_CANONICALIZE_H_
#define SFSQL_SQL_CANONICALIZE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "storage/value.h"

namespace sfsql::sql {

/// The literal-stripped canonical form of a (schema-free) SELECT statement —
/// the structural identity the cross-query plan cache keys on.
///
/// Canonicalization deep-clones the statement and replaces every string, int,
/// and double literal (subqueries included, in deterministic walk order) with a
/// slot-numbered placeholder of the same type:
///   string  -> '$<slot>'
///   int     -> <slot>
///   double  -> <slot>.5
/// so two statements that differ only in those literal values canonicalize to
/// the same AST and the same printed text. Bool and NULL literals are left in
/// place: they form a two- resp. one-value domain, so stripping them would buy
/// no sharing while costing slot bookkeeping. Identifier spelling (case,
/// aliases, vagueness markers) is preserved verbatim — printed SQL echoes the
/// user's casing, and a cache hit must reproduce the output bit-identically.
/// Whitespace and redundant parentheses are normalized implicitly because the
/// canonical text is printed from the AST, not copied from the input.
///
/// The placeholder values round-trip through the printer and parser:
/// Print(canonical) re-parses to an AST equal to `statement` (guarded by the
/// workload round-trip test, so printer drift cannot silently split or alias
/// cache keys).
struct CanonicalQuery {
  SelectPtr statement;  ///< literal-stripped deep clone
  std::string text;     ///< PrintSelect(*statement) — the cache key text
  uint64_t fingerprint = 0;  ///< FNV-1a 64 of `text` (shard selection)
  /// The stripped literal values, by slot. Slot i corresponds to the i-th
  /// slotted literal in walk order (ForEachLiteral).
  std::vector<storage::Value> literals;
};

/// Canonicalizes `stmt` (which is not modified).
CanonicalQuery Canonicalize(const SelectStatement& stmt);

/// Calls `fn` on every kLiteral expression of the statement in the
/// deterministic canonicalization walk order: select items, where, group by,
/// having, order by — recursing into lhs/rhs/args and subqueries in place.
/// This is the order CanonicalQuery::literals is numbered in; the plan cache
/// replays it to substitute fresh literals into a cached translation.
void ForEachLiteral(SelectStatement& stmt,
                    const std::function<void(Expr&)>& fn);
void ForEachLiteral(const SelectStatement& stmt,
                    const std::function<void(const Expr&)>& fn);

/// FNV-1a 64-bit hash (the fingerprint hasher; exposed for tests and for
/// sharding other string keys).
uint64_t FingerprintBytes(std::string_view bytes);

/// True if canonical slot placeholder `v` decodes to slot `slot` of type
/// matching `v` — the inverse of the placeholder encoding above. Used when
/// deriving probe plans from a canonical AST: every slotted literal in a
/// canonical statement satisfies DecodeSlot, everything else (bools, NULLs,
/// structural values such as LIKE escape characters) does not.
/// Returns -1 when `v` is not a slot placeholder.
int DecodeSlot(const storage::Value& v);

}  // namespace sfsql::sql

#endif  // SFSQL_SQL_CANONICALIZE_H_
