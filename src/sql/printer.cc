#include "sql/printer.h"

#include "common/strings.h"

namespace sfsql::sql {

namespace {

void PrintExprTo(const Expr& e, std::string& out);

void PrintSelectTo(const SelectStatement& stmt, std::string& out) {
  out += "SELECT ";
  if (stmt.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < stmt.select_items.size(); ++i) {
    if (i > 0) out += ", ";
    PrintExprTo(*stmt.select_items[i].expr, out);
    if (!stmt.select_items[i].alias.empty()) {
      out += " AS ";
      out += stmt.select_items[i].alias;
    }
  }
  if (!stmt.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.from[i].relation.ToString();
      if (!stmt.from[i].alias.empty()) {
        out += " AS ";
        out += stmt.from[i].alias;
      }
    }
  }
  if (stmt.where) {
    out += " WHERE ";
    PrintExprTo(*stmt.where, out);
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      PrintExprTo(*stmt.group_by[i], out);
    }
  }
  if (stmt.having) {
    out += " HAVING ";
    PrintExprTo(*stmt.having, out);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      PrintExprTo(*stmt.order_by[i].expr, out);
      if (!stmt.order_by[i].ascending) out += " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    out += " LIMIT ";
    out += std::to_string(*stmt.limit);
  }
}

/// Precedence used only to decide parenthesization when printing.
int Precedence(const Expr& e) {
  if (e.kind != ExprKind::kBinary) return 100;
  switch (e.bop) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return 5;
  }
  return 100;
}

void PrintChild(const Expr& parent, const Expr& child, std::string& out) {
  bool parens = Precedence(child) < Precedence(parent);
  if (parens) out += "(";
  PrintExprTo(child, out);
  if (parens) out += ")";
}

void PrintExprTo(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      out += e.literal.ToSqlLiteral();
      return;
    case ExprKind::kColumnRef:
      if (e.relation.specified()) {
        out += e.relation.ToString();
        out += ".";
      }
      out += e.attribute.ToString();
      return;
    case ExprKind::kStar:
      if (e.relation.specified()) {
        out += e.relation.ToString();
        out += ".";
      }
      out += "*";
      return;
    case ExprKind::kUnary:
      if (e.uop == UnaryOp::kNot) {
        out += "NOT ";
        PrintChild(e, *e.lhs, out);
      } else {
        out += "-";
        PrintChild(e, *e.lhs, out);
      }
      return;
    case ExprKind::kBinary:
      PrintChild(e, *e.lhs, out);
      out += " ";
      out += BinaryOpToString(e.bop);
      out += " ";
      PrintChild(e, *e.rhs, out);
      if (e.bop == BinaryOp::kLike && !e.like_escape.empty()) {
        out += " ESCAPE ";
        out += storage::Value::String(e.like_escape).ToSqlLiteral();
      }
      return;
    case ExprKind::kFunctionCall:
      out += e.function_name;
      out += "(";
      if (e.distinct) out += "DISTINCT ";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        PrintExprTo(*e.args[i], out);
      }
      out += ")";
      return;
    case ExprKind::kInList:
      PrintExprTo(*e.lhs, out);
      out += e.negated ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        PrintExprTo(*e.args[i], out);
      }
      out += ")";
      return;
    case ExprKind::kInSubquery:
      PrintExprTo(*e.lhs, out);
      out += e.negated ? " NOT IN (" : " IN (";
      PrintSelectTo(*e.subquery, out);
      out += ")";
      return;
    case ExprKind::kExistsSubquery:
      if (e.negated) out += "NOT ";
      out += "EXISTS (";
      PrintSelectTo(*e.subquery, out);
      out += ")";
      return;
    case ExprKind::kScalarSubquery:
      out += "(";
      PrintSelectTo(*e.subquery, out);
      out += ")";
      return;
    case ExprKind::kBetween:
      PrintExprTo(*e.lhs, out);
      out += e.negated ? " NOT BETWEEN " : " BETWEEN ";
      PrintExprTo(*e.args[0], out);
      out += " AND ";
      PrintExprTo(*e.args[1], out);
      return;
    case ExprKind::kIsNull:
      PrintExprTo(*e.lhs, out);
      out += e.negated ? " IS NOT NULL" : " IS NULL";
      return;
  }
}

}  // namespace

std::string PrintExpr(const Expr& expr) {
  std::string out;
  PrintExprTo(expr, out);
  return out;
}

std::string PrintSelect(const SelectStatement& stmt) {
  std::string out;
  PrintSelectTo(stmt, out);
  return out;
}

}  // namespace sfsql::sql
