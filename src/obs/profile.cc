#include "obs/profile.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"

namespace sfsql::obs {

void QueryProfile::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.KV("id", static_cast<unsigned long long>(id));
  w.KV("start_nanos", static_cast<unsigned long long>(start_nanos));
  w.KV("kind", kind);
  w.KV("statement", statement);
  if (!fingerprint.empty()) w.KV("fingerprint", fingerprint);
  w.KV("ok", ok);
  if (!ok) w.KV("error", error);
  w.KV("cache_tier", cache_tier);
  w.KV("latency_ms", latency_seconds * 1e3);
  w.KV("parse_ms", parse_seconds * 1e3);
  w.KV("map_ms", map_seconds * 1e3);
  w.KV("graph_ms", graph_seconds * 1e3);
  w.KV("generate_ms", generate_seconds * 1e3);
  w.KV("compose_ms", compose_seconds * 1e3);
  w.KV("execute_ms", execute_seconds * 1e3);
  w.KV("sat_index_probes", sat_index_probes);
  w.KV("sat_scan_probes", sat_scan_probes);
  w.KV("sat_memo_hits", sat_memo_hits);
  w.KV("translations", translations);
  w.KV("rows_scanned", static_cast<unsigned long long>(rows_scanned));
  w.KV("rows_returned", static_cast<unsigned long long>(rows_returned));
  w.KV("chunks_total", static_cast<unsigned long long>(chunks_total));
  w.KV("chunks_pruned", static_cast<unsigned long long>(chunks_pruned));
  if (!access_paths.empty()) {
    w.Key("access_paths");
    w.BeginArray();
    for (const ProfileAccessPath& p : access_paths) {
      w.BeginObject();
      w.KV("binding", p.binding);
      w.KV("relation", p.relation);
      w.KV("access", p.access);
      w.KV("table_rows", static_cast<unsigned long long>(p.table_rows));
      w.KV("estimated_rows", static_cast<unsigned long long>(p.estimated_rows));
      w.KV("chunks_total", static_cast<unsigned long long>(p.chunks_total));
      w.KV("chunks_pruned", static_cast<unsigned long long>(p.chunks_pruned));
      w.EndObject();
    }
    w.EndArray();
  }
  if (!spans.empty()) {
    w.Key("trace");
    Tracer::WriteForestJson(spans, w);
  }
  w.EndObject();
}

QueryProfileStore::QueryProfileStore(size_t capacity, size_t num_shards)
    : capacity_(0), num_shards_(num_shards == 0 ? 1 : num_shards) {
  if (capacity == 0) capacity = 1;
  const size_t per_shard = (capacity + num_shards_ - 1) / num_shards_;
  capacity_ = per_shard * num_shards_;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].slots = std::vector<Slot>(per_shard);
  }
}

void QueryProfileStore::Record(QueryProfile&& profile) {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  profile.id = next_id_.fetch_add(1, kRelaxed) + 1;
  Shard& shard = shards_[ThisThreadShard() % num_shards_];
  const uint64_t idx =
      shard.cursor.fetch_add(1, kRelaxed) % shard.slots.size();
  Slot& slot = shard.slots[idx];
  if (slot.lock.test_and_set(std::memory_order_acquire)) {
    // Someone is copying (or wrapped onto) this slot right now. Dropping is
    // cheaper than waiting — capture must never stall the serving path.
    dropped_.fetch_add(1, kRelaxed);
    return;
  }
  if (slot.filled) dropped_.fetch_add(1, kRelaxed);  // ring overwrite
  slot.filled = true;
  slot.value = std::move(profile);
  slot.lock.clear(std::memory_order_release);
  recorded_.fetch_add(1, kRelaxed);
}

std::vector<QueryProfile> QueryProfileStore::Snapshot() const {
  std::vector<QueryProfile> out;
  for (size_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    for (const Slot& slot : shard.slots) {
      // Spin-acquire: writers hold the flag only for one move, so this is
      // bounded; a blocked writer meanwhile drops instead of waiting on us.
      while (slot.lock.test_and_set(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (slot.filled) out.push_back(slot.value);
      slot.lock.clear(std::memory_order_release);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const QueryProfile& a, const QueryProfile& b) {
              return a.id < b.id;
            });
  return out;
}

void QueryProfileStore::WriteJson(JsonWriter& w) const {
  const std::vector<QueryProfile> profiles = Snapshot();
  w.BeginObject();
  w.KV("capacity", static_cast<unsigned long long>(capacity_));
  w.KV("recorded", static_cast<unsigned long long>(recorded()));
  w.KV("dropped", static_cast<unsigned long long>(dropped()));
  w.Key("profiles");
  w.BeginArray();
  for (const QueryProfile& p : profiles) p.WriteJson(w);
  w.EndArray();
  w.EndObject();
}

std::string QueryProfileStore::ToJson(bool pretty) const {
  JsonWriter w(pretty);
  WriteJson(w);
  return w.TakeString();
}

}  // namespace sfsql::obs
