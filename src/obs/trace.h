#ifndef SFSQL_OBS_TRACE_H_
#define SFSQL_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "obs/json.h"

namespace sfsql::obs {

/// One finished (or still-open) span. Attributes are stringified key/value
/// pairs in insertion order.
struct SpanRecord {
  int id = -1;
  int parent = -1;  ///< SpanRecord::id of the parent, -1 for roots
  std::string name;
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;
  std::vector<std::pair<std::string, std::string>> attributes;

  double seconds() const { return NanosToSeconds(end_nanos - start_nanos); }
};

/// Lightweight in-process span collector. Spans are identified by small
/// integer ids and parented explicitly (no thread-local context), so the
/// parallel generator can report per-root spans into the same trace. All
/// methods are thread-safe; the clock is injected (steady by default) so
/// tests and golden files get deterministic timings.
///
/// A Tracer is cheap to construct and is typically created per traced
/// operation (one Translate call); a null Tracer* anywhere means "not
/// tracing" and costs nothing.
class Tracer {
 public:
  explicit Tracer(const Clock* clock = nullptr) : clock_(ClockOrSteady(clock)) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII handle: ends the span on destruction unless End() was called.
  /// Movable; a default-constructed Span is inactive and all operations on it
  /// are no-ops.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      End();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = -1;
      return *this;
    }
    ~Span() { End(); }

    void Attr(std::string_view key, std::string_view value);
    void Attr(std::string_view key, long long value);
    void Attr(std::string_view key, double value);
    void End();

    bool active() const { return tracer_ != nullptr; }
    int id() const { return id_; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, int id) : tracer_(tracer), id_(id) {}

    Tracer* tracer_ = nullptr;
    int id_ = -1;
  };

  /// Opens a span; `parent_id` is the id() of the enclosing span (-1 = root).
  Span StartSpan(std::string name, int parent_id = -1);

  /// Records an already-measured interval (e.g. a per-root search timed by
  /// the generator) as a closed span. Returns its id.
  int AddCompleteSpan(std::string name, int parent_id, uint64_t start_nanos,
                      uint64_t end_nanos,
                      std::vector<std::pair<std::string, std::string>>
                          attributes = {});

  uint64_t NowNanos() const { return clock_->NowNanos(); }
  const Clock& clock() const { return *clock_; }

  std::vector<SpanRecord> Snapshot() const;

  /// Indented tree of the collected spans with millisecond durations and
  /// attributes, children in start order.
  std::string RenderTree() const;

  /// Writes the spans as a JSON array (flat, with parent ids).
  void WriteJson(JsonWriter& w) const;

  /// As WriteJson, for a snapshot taken earlier.
  static void WriteSpansJson(const std::vector<SpanRecord>& spans,
                             JsonWriter& w);

  /// Writes the spans as a nested forest: a JSON array of root span objects,
  /// each with its attributes and a "children" array, children in start
  /// (= id) order — the tree RenderTree prints, machine-readable. This is the
  /// shape a QueryProfile embeds verbatim as its "trace" member. Spans whose
  /// parent id is out of range are treated as roots, like RenderSpanTree.
  void WriteForestJson(JsonWriter& w) const;

  /// As WriteForestJson, for a snapshot taken earlier.
  static void WriteForestJson(const std::vector<SpanRecord>& spans,
                              JsonWriter& w);

 private:
  void EndSpan(int id);
  void AddAttr(int id, std::string_view key, std::string value);

  const Clock* clock_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// Human rendering of a span forest (used by Tracer::RenderTree and the
/// EXPLAIN output, which embeds span snapshots).
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

}  // namespace sfsql::obs

#endif  // SFSQL_OBS_TRACE_H_
