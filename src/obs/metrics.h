#ifndef SFSQL_OBS_METRICS_H_
#define SFSQL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sfsql::obs {

/// Number of atomic slots each counter/histogram spreads its writes over.
/// Writers pick a slot by a thread-local index, so the parallel MTJN workers
/// never contend on one cache line; readers sum the slots. Integer counts
/// make the sum independent of interleaving — instrumentation cannot perturb
/// the bit-identical parallel-vs-serial property.
inline constexpr size_t kMetricShards = 16;

/// Slot index of the calling thread (stable for the thread's lifetime,
/// assigned round-robin).
size_t ThisThreadShard();

/// Monotonically increasing event count. Obtain through
/// MetricsRegistry::GetCounter; handles stay valid for the registry's
/// lifetime and are safe to use from any thread.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    // Zero deltas are common on hot paths (per-call counter deltas that are
    // usually 0); skipping the RMW there is free and measurable.
    if (delta == 0) return;
    shards_[ThisThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  std::array<Slot, kMetricShards> shards_;
};

/// A value that can go up and down (cache occupancy, queue depth, last-run
/// figures). Set/Add are atomic; Set is a plain store, so concurrent setters
/// race benignly (last writer wins).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<double> value_{0.0};
};

/// Distribution over fixed, strictly increasing bucket upper bounds with an
/// implicit +Inf bucket at the end (Prometheus `le` semantics: an observation
/// lands in the first bucket whose bound is >= the value, so an observation
/// exactly on a bound belongs to that bound's bucket). Counts are sharded
/// like Counter; the running sum is a per-shard atomic double, so Sum() is
/// exact for deterministic single-threaded runs and accurate to accumulation
/// order otherwise.
class Histogram {
 public:
  void Observe(double value);

  /// Raw (non-cumulative) count of bucket `i`; i == bounds().size() is the
  /// overflow (+Inf) bucket.
  uint64_t BucketCount(size_t i) const;

  uint64_t Count() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Slot {
    std::vector<std::atomic<uint64_t>> counts;  ///< bounds_.size() + 1
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Slot, kMetricShards> shards_;
};

/// Default histogram buckets for sub-second phase latencies (1 µs – 10 s,
/// roughly 1-3-10 spaced).
const std::vector<double>& LatencyBuckets();

/// One key=value metric dimension. Series within a family are distinguished
/// by their full label list (order-sensitive; callers use a fixed order).
struct Label {
  std::string key;
  std::string value;

  bool operator==(const Label&) const = default;
};
using Labels = std::vector<Label>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// Registry of named metric families. Registration is synchronized and
/// idempotent: the same (name, labels) yields the same handle. The hot path
/// never touches the registry — handles are resolved once (e.g. at engine
/// construction) and written through lock-free atomics afterwards. A null
/// registry pointer anywhere in the system means "metrics off" and must incur
/// no work at all.
///
/// Export snapshots (Prometheus text / JSON) live in obs/export.h.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the series. Returns null only if `name` already exists
  /// with a different metric type (a programming error the caller may assert
  /// on). `help` is recorded on first registration of the family.
  ///
  /// Re-registration is first-wins, never silently: a later call whose type,
  /// help, or (for histograms) bucket bounds disagree with the existing
  /// family returns the existing handle (null for a type mismatch, where no
  /// usable handle of the requested type exists) AND increments the
  /// registry's own `sfsql_obs_registration_conflicts_total` counter, so
  /// divergent registrations are visible in every export instead of one call
  /// site quietly observing into differently-shaped buckets.
  Counter* GetCounter(std::string_view name, std::string_view help,
                      Labels labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  Labels labels = {});
  /// `bounds` must be strictly increasing; it is fixed by the family's first
  /// registration (later calls with different `bounds` get the existing
  /// bounds and count a registration conflict).
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          const std::vector<double>& bounds,
                          Labels labels = {});

  /// Conflicting re-registrations observed so far (the value of
  /// sfsql_obs_registration_conflicts_total).
  uint64_t registration_conflicts() const;

  /// A convenient process-wide instance for tools that want one.
  static MetricsRegistry& Default();

  // --- Introspection for exporters (reads are snapshot-consistent per
  // metric, not across metrics; fine for monitoring).

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Series> series;  ///< registration order
  };

  /// Invokes `fn` on every family in registration order while holding the
  /// registration lock (metric *values* keep changing; families don't).
  template <typename Fn>
  void ForEachFamily(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& family : families_) fn(*family);
  }

 private:
  Family* FindOrCreateFamily(std::string_view name, std::string_view help,
                             MetricType type);
  static Series* FindSeries(Family& family, const Labels& labels);
  /// The registry's own conflict counter, created lazily while mu_ is held
  /// (bypassing GetCounter, which would re-lock).
  Counter* ConflictCounterLocked();

  mutable std::mutex mu_;
  /// unique_ptr keeps Family addresses stable across registrations.
  std::vector<std::unique_ptr<Family>> families_;
  Counter* conflicts_ = nullptr;  ///< cached handle into families_
};

}  // namespace sfsql::obs

#endif  // SFSQL_OBS_METRICS_H_
