#include "obs/metrics.h"

#include <algorithm>

namespace sfsql::obs {

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (Slot& s : shards_) {
    s.counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  Slot& slot = shards_[ThisThreadShard()];
  slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  if (value == 0.0) return;  // sum unchanged; skip the CAS loop
  double cur = slot.sum.load(std::memory_order_relaxed);
  while (!slot.sum.compare_exchange_weak(cur, cur + value,
                                         std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::BucketCount(size_t i) const {
  uint64_t total = 0;
  for (const Slot& s : shards_) {
    total += s.counts[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) total += BucketCount(i);
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Slot& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

const std::vector<double>& LatencyBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
      1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0};
  return *buckets;
}

inline constexpr std::string_view kConflictCounterName =
    "sfsql_obs_registration_conflicts_total";
inline constexpr std::string_view kConflictCounterHelp =
    "Metric re-registrations whose type, help, or histogram bounds disagreed "
    "with the existing family (first registration wins).";

Counter* MetricsRegistry::ConflictCounterLocked() {
  if (conflicts_ != nullptr) return conflicts_;
  // Inline FindOrCreateFamily + series creation: callers already hold mu_,
  // and this family is registry-owned so it can never itself conflict.
  Family* family = nullptr;
  for (auto& f : families_) {
    if (f->name == kConflictCounterName) {
      family = f.get();
      break;
    }
  }
  if (family == nullptr) {
    auto f = std::make_unique<Family>();
    f->name = std::string(kConflictCounterName);
    f->help = std::string(kConflictCounterHelp);
    f->type = MetricType::kCounter;
    families_.push_back(std::move(f));
    family = families_.back().get();
  }
  if (family->series.empty()) {
    Series series;
    series.counter.reset(new Counter());
    family->series.push_back(std::move(series));
  }
  conflicts_ = family->series.front().counter.get();
  return conflicts_;
}

uint64_t MetricsRegistry::registration_conflicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (conflicts_ == nullptr) return 0;
  return conflicts_->Value();
}

MetricsRegistry::Family* MetricsRegistry::FindOrCreateFamily(
    std::string_view name, std::string_view help, MetricType type) {
  for (auto& family : families_) {
    if (family->name == name) {
      // Grab the heap pointer before any conflict increment:
      // ConflictCounterLocked() may push_back into families_, which
      // invalidates `family` (the vector element) but not the Family it owns.
      Family* found = family.get();
      if (found->type != type) {
        ConflictCounterLocked()->Increment();
        return nullptr;
      }
      if (found->help != help) {
        // First registration's help wins; record the divergence so the two
        // call sites can be found and reconciled.
        ConflictCounterLocked()->Increment();
      }
      return found;
    }
  }
  auto family = std::make_unique<Family>();
  family->name = std::string(name);
  family->help = std::string(help);
  family->type = type;
  families_.push_back(std::move(family));
  return families_.back().get();
}

MetricsRegistry::Series* MetricsRegistry::FindSeries(Family& family,
                                                     const Labels& labels) {
  for (Series& s : family.series) {
    if (s.labels == labels) return &s;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, MetricType::kCounter);
  if (family == nullptr) return nullptr;
  if (Series* s = FindSeries(*family, labels)) return s->counter.get();
  Series series;
  series.labels = std::move(labels);
  series.counter.reset(new Counter());
  family->series.push_back(std::move(series));
  return family->series.back().counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, MetricType::kGauge);
  if (family == nullptr) return nullptr;
  if (Series* s = FindSeries(*family, labels)) return s->gauge.get();
  Series series;
  series.labels = std::move(labels);
  series.gauge.reset(new Gauge());
  family->series.push_back(std::move(series));
  return family->series.back().gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         const std::vector<double>& bounds,
                                         Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FindOrCreateFamily(name, help, MetricType::kHistogram);
  if (family == nullptr) return nullptr;
  // All series of one family share bucket bounds (first registration wins);
  // asking for different bounds is a registration conflict either way.
  if (!family->series.empty() &&
      family->series.front().histogram->bounds() != bounds) {
    ConflictCounterLocked()->Increment();
  }
  if (Series* s = FindSeries(*family, labels)) return s->histogram.get();
  const std::vector<double>& use =
      family->series.empty() ? bounds
                             : family->series.front().histogram->bounds();
  Series series;
  series.labels = std::move(labels);
  series.histogram.reset(new Histogram(use));
  family->series.push_back(std::move(series));
  return family->series.back().histogram.get();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace sfsql::obs
