#ifndef SFSQL_OBS_JSON_H_
#define SFSQL_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace sfsql::obs {

/// Minimal streaming JSON writer shared by the exporters, the EXPLAIN
/// renderer, and the bench reports. Handles comma placement, string escaping,
/// and optional pretty-printing; the caller is responsible for well-formed
/// nesting (every Begin has a matching End, every object value is preceded by
/// a Key).
class JsonWriter {
 public:
  /// `double_precision` is the %g significant-digit count used for doubles —
  /// golden files use a modest precision so deterministic computations render
  /// identically everywhere.
  explicit JsonWriter(bool pretty = false, int double_precision = 12)
      : pretty_(pretty), precision_(double_precision) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(long long value);
  void UInt(unsigned long long value);
  void Double(double value);  ///< non-finite values render as null
  void Bool(bool value);
  void Null();

  // Key/value conveniences for object members.
  void KV(std::string_view key, std::string_view value) { Key(key); String(value); }
  void KV(std::string_view key, const char* value) { Key(key); String(value); }
  void KV(std::string_view key, long long value) { Key(key); Int(value); }
  void KV(std::string_view key, int value) { Key(key); Int(value); }
  void KV(std::string_view key, unsigned long long value) { Key(key); UInt(value); }
  void KV(std::string_view key, double value) { Key(key); Double(value); }
  void KV(std::string_view key, bool value) { Key(key); Bool(value); }

  /// The document built so far; call once, after the last End.
  std::string TakeString() { return std::move(out_); }

  static std::string Escape(std::string_view raw);

 private:
  void BeforeValue();
  void Newline();

  bool pretty_;
  int precision_;
  std::string out_;
  /// One frame per open container: count of values emitted, is-array flag,
  /// and whether a key was just written (value expected next).
  struct Frame {
    int count = 0;
    bool array = false;
  };
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

/// Parsed JSON value (validator + tests). Number precision is double; object
/// member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on objects; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Strict-enough recursive-descent JSON parser (no comments, no trailing
/// commas; \uXXXX escapes are passed through verbatim as text).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace sfsql::obs

#endif  // SFSQL_OBS_JSON_H_
