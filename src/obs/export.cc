#include "obs/export.h"

#include <cstdio>

#include "obs/json.h"

namespace sfsql::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// {k1="v1",k2="v2"} with `extra` appended last (used for the `le` bucket
/// label); empty string when there are no labels at all.
std::string LabelBlock(const Labels& labels, std::string_view extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ",";
    first = false;
    out += l.key;
    out += "=\"";
    out += EscapeLabelValue(l.value);
    out += "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  registry.ForEachFamily([&](const MetricsRegistry::Family& family) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + std::string(TypeName(family.type)) +
           "\n";
    for (const MetricsRegistry::Series& series : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          out += family.name + LabelBlock(series.labels) + " " +
                 std::to_string(series.counter->Value()) + "\n";
          break;
        case MetricType::kGauge:
          out += family.name + LabelBlock(series.labels) + " " +
                 FormatDouble(series.gauge->Value()) + "\n";
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *series.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.BucketCount(i);
            out += family.name + "_bucket" +
                   LabelBlock(series.labels,
                              "le=\"" + FormatDouble(h.bounds()[i]) + "\"") +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += h.BucketCount(h.bounds().size());
          out += family.name + "_bucket" +
                 LabelBlock(series.labels, "le=\"+Inf\"") + " " +
                 std::to_string(cumulative) + "\n";
          out += family.name + "_sum" + LabelBlock(series.labels) + " " +
                 FormatDouble(h.Sum()) + "\n";
          out += family.name + "_count" + LabelBlock(series.labels) + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  });
  return out;
}

std::string ToJson(const MetricsRegistry& registry, bool pretty) {
  JsonWriter w(pretty);
  WriteRegistryJson(registry, w);
  return w.TakeString();
}

void WriteRegistryJson(const MetricsRegistry& registry, JsonWriter& w) {
  w.BeginObject();
  w.Key("metrics");
  w.BeginArray();
  registry.ForEachFamily([&](const MetricsRegistry::Family& family) {
    w.BeginObject();
    w.KV("name", family.name);
    w.KV("type", TypeName(family.type));
    w.KV("help", family.help);
    w.Key("series");
    w.BeginArray();
    for (const MetricsRegistry::Series& series : family.series) {
      w.BeginObject();
      if (!series.labels.empty()) {
        w.Key("labels");
        w.BeginObject();
        for (const Label& l : series.labels) w.KV(l.key, l.value);
        w.EndObject();
      }
      switch (family.type) {
        case MetricType::kCounter:
          w.KV("value",
               static_cast<unsigned long long>(series.counter->Value()));
          break;
        case MetricType::kGauge:
          w.KV("value", series.gauge->Value());
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *series.histogram;
          uint64_t cumulative = 0;
          w.Key("buckets");
          w.BeginArray();
          for (size_t i = 0; i <= h.bounds().size(); ++i) {
            cumulative += h.BucketCount(i);
            w.BeginObject();
            if (i < h.bounds().size()) {
              w.KV("le", h.bounds()[i]);
            } else {
              w.KV("le", "+Inf");
            }
            w.KV("count", static_cast<unsigned long long>(cumulative));
            w.EndObject();
          }
          w.EndArray();
          w.KV("count", static_cast<unsigned long long>(cumulative));
          w.KV("sum", h.Sum());
          break;
        }
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  });
  w.EndArray();
  w.EndObject();
}

}  // namespace sfsql::obs
