#ifndef SFSQL_OBS_BENCH_REPORT_H_
#define SFSQL_OBS_BENCH_REPORT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace sfsql::obs {

/// Machine-readable result file for one bench binary. Every `bench_*`
/// executable builds one of these next to its human-readable table and writes
/// it as `BENCH_<name>.json` in the working directory, so the perf trajectory
/// of the repo can be tracked mechanically (and CI can validate the shape —
/// see tools/validate_bench_json).
///
/// Documented shape (EXPERIMENTS.md, "Machine-readable bench output"):
///   {
///     "bench": "<name>",            // binary name without the bench_ prefix
///     "schema_version": 1,
///     "config":  { key: string|number, ... },   // run parameters
///     "metrics": { key: number, ... },          // headline scalars
///     "tables":  { name: [ {col: string|number, ...}, ... ], ... }  // detail
///   }
/// "config" and "tables" may be empty; "metrics" holds at least one entry
/// (e.g. queries_per_second, per-phase medians, cache hit rates — whatever
/// the bench measures).
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void SetConfig(std::string_view key, std::string_view value);
  void SetConfig(std::string_view key, double value);
  void SetConfig(std::string_view key, long long value);

  void SetMetric(std::string_view key, double value);

  /// One detail row (appended to table `table`); a row is an ordered list of
  /// (column, value) cells.
  class Row {
   public:
    Row& Text(std::string_view column, std::string_view value);
    Row& Number(std::string_view column, double value);

   private:
    friend class BenchReport;
    struct Cell {
      std::string column;
      bool numeric = false;
      std::string text;
      double number = 0.0;
    };
    std::vector<Cell> cells_;
  };
  void AddRow(std::string_view table, Row row);

  /// Median of `values` (0 when empty) — the per-phase aggregate the bench
  /// files report, robust against warm-up outliers.
  static double Median(std::vector<double> values);

  /// Nearest-rank percentile of `values` (0 when empty); `p` in [0, 100].
  /// Percentile(v, 50) is the upper median, so for odd sizes it matches
  /// Median exactly.
  static double Percentile(std::vector<double> values, double p);

  /// Emits the standard latency summary of a per-call sample as the metrics
  /// `<prefix>_p50`, `<prefix>_p95`, and `<prefix>_p99`. Every bench reports
  /// this triple for its primary latency distribution, and
  /// tools/validate_bench_json enforces presence and p50 <= p95 <= p99.
  void SetLatencyMetrics(std::string_view prefix, std::vector<double> values);

  std::string ToJson(bool pretty = true) const;

  /// Writes `BENCH_<name>.json` into `directory` (default: the working
  /// directory) and prints a one-line note to stdout.
  Status WriteFile(const std::string& directory = ".") const;

  const std::string& name() const { return name_; }

 private:
  struct Entry {
    std::string key;
    bool numeric = false;
    std::string text;
    double number = 0.0;
  };

  std::string name_;
  std::vector<Entry> config_;
  std::vector<Entry> metrics_;
  std::vector<std::pair<std::string, std::vector<Row>>> tables_;
};

}  // namespace sfsql::obs

#endif  // SFSQL_OBS_BENCH_REPORT_H_
