#ifndef SFSQL_OBS_PROFILE_H_
#define SFSQL_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace sfsql::obs {

/// Access path one table of a profiled execution took (a compressed
/// exec::TableAccessExplain — enough to answer "why was this query slow"
/// without holding the full plan alive).
struct ProfileAccessPath {
  std::string binding;
  std::string relation;
  std::string access;  ///< "index_scan" | "index_join" | "table_scan"
  uint64_t table_rows = 0;
  uint64_t estimated_rows = 0;
  uint64_t chunks_total = 0;
  uint64_t chunks_pruned = 0;
};

/// One query's end-to-end profile record: what the engine did for one
/// Translate or Execute call. Captured always-on into a QueryProfileStore
/// (EngineConfig::profiles); exported as JSON and queryable through the
/// sys_queries virtual relation (core/introspection).
struct QueryProfile {
  uint64_t id = 0;           ///< global claim order, 1-based (store-assigned)
  uint64_t start_nanos = 0;  ///< clock reading when the call began
  std::string kind;          ///< "translate" | "execute"
  std::string statement;     ///< the schema-free text as submitted
  std::string fingerprint;   ///< canonical-structure hex fingerprint ("" when
                             ///< the call never canonicalized, e.g. tier-2 hits)
  bool ok = true;
  std::string error;       ///< status message when !ok
  std::string cache_tier;  ///< "tier2" | "tier1" | "miss" | "off"
  double latency_seconds = 0.0;  ///< end-to-end (translate + execute)

  // Translate phase breakdown (TranslateStats; all zero on cache hits, which
  // skip the pipeline).
  double parse_seconds = 0.0;
  double map_seconds = 0.0;
  double graph_seconds = 0.0;
  double generate_seconds = 0.0;
  double compose_seconds = 0.0;
  double execute_seconds = 0.0;  ///< kind == "execute" only

  // Condition-satisfiability probes of the call, by answer path.
  long long sat_index_probes = 0;
  long long sat_scan_probes = 0;
  long long sat_memo_hits = 0;

  long long translations = 0;   ///< ranked candidates returned
  uint64_t rows_scanned = 0;    ///< base rows read from storage (execute)
  uint64_t rows_returned = 0;   ///< result rows materialized (execute)
  uint64_t chunks_total = 0;    ///< chunks of the planned tables (execute)
  uint64_t chunks_pruned = 0;   ///< chunks zone-map pruning skipped (execute)

  /// Per-table access paths of the top-level executed block (empty for pure
  /// translations and legacy-fold executions).
  std::vector<ProfileAccessPath> access_paths;

  /// Embedded trace (span forest, Tracer::WriteForestJson shape). Filled only
  /// for pipeline runs — cache hits carry no phase provenance.
  std::vector<SpanRecord> spans;

  void WriteJson(JsonWriter& w) const;
};

/// Bounded, sharded ring buffer of QueryProfile records — the always-on
/// profile sink behind EngineConfig::profiles.
///
/// Writers never block and never wait on each other: a writer claims a slot
/// with one relaxed fetch_add on its shard's cursor (shards are picked by the
/// caller's thread, the obs metric-shard assignment, so serving threads
/// rarely share a cursor cache line), takes the slot's try-lock, and moves
/// the record in. The only lock hold is the move itself; if the try-lock is
/// already taken (a reader copying the slot, or a wrapped-around writer), the
/// record is dropped and counted rather than waited for — capture must never
/// add latency to the serving path. Old records are overwritten ring-style;
/// every overwrite and contention skip increments dropped().
///
/// Readers (Snapshot / WriteJson) spin-acquire each slot briefly to copy it;
/// they are expected to be rare (periodic stats snapshots, sys_queries).
class QueryProfileStore {
 public:
  /// `capacity` is the total record bound across all shards (rounded up to a
  /// multiple of `num_shards`).
  explicit QueryProfileStore(size_t capacity = 4096, size_t num_shards = 8);

  QueryProfileStore(const QueryProfileStore&) = delete;
  QueryProfileStore& operator=(const QueryProfileStore&) = delete;

  /// Stores `profile`, assigning its global id. Wait-free for writers up to
  /// the slot try-lock; never blocks.
  void Record(QueryProfile&& profile);

  /// All currently live records, ascending id order.
  std::vector<QueryProfile> Snapshot() const;

  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  /// Records lost: overwritten by ring wrap-around or skipped under slot
  /// contention. The serving bench reports this as profile_ring_dropped.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

  /// {"capacity": .., "recorded": .., "dropped": .., "profiles": [..]}.
  void WriteJson(JsonWriter& w) const;
  std::string ToJson(bool pretty = false) const;

 private:
  struct Slot {
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
    bool filled = false;
    QueryProfile value;
  };
  struct alignas(64) Shard {
    std::atomic<uint64_t> cursor{0};
    std::vector<Slot> slots;
  };

  size_t capacity_;
  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> recorded_{0};
  mutable std::atomic<uint64_t> dropped_{0};
};

}  // namespace sfsql::obs

#endif  // SFSQL_OBS_PROFILE_H_
