#include "obs/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "obs/json.h"

namespace sfsql::obs {

void BenchReport::SetConfig(std::string_view key, std::string_view value) {
  Entry e;
  e.key = std::string(key);
  e.text = std::string(value);
  config_.push_back(std::move(e));
}

void BenchReport::SetConfig(std::string_view key, double value) {
  Entry e;
  e.key = std::string(key);
  e.numeric = true;
  e.number = value;
  config_.push_back(std::move(e));
}

void BenchReport::SetConfig(std::string_view key, long long value) {
  SetConfig(key, static_cast<double>(value));
}

void BenchReport::SetMetric(std::string_view key, double value) {
  // Last write wins: setting the same key twice (e.g. a per-scale loop
  // followed by an acceptance summary) must not emit duplicate JSON members.
  for (Entry& e : metrics_) {
    if (e.key == key) {
      e.numeric = true;
      e.number = value;
      return;
    }
  }
  Entry e;
  e.key = std::string(key);
  e.numeric = true;
  e.number = value;
  metrics_.push_back(std::move(e));
}

BenchReport::Row& BenchReport::Row::Text(std::string_view column,
                                         std::string_view value) {
  Cell c;
  c.column = std::string(column);
  c.text = std::string(value);
  cells_.push_back(std::move(c));
  return *this;
}

BenchReport::Row& BenchReport::Row::Number(std::string_view column,
                                           double value) {
  Cell c;
  c.column = std::string(column);
  c.numeric = true;
  c.number = value;
  cells_.push_back(std::move(c));
  return *this;
}

void BenchReport::AddRow(std::string_view table, Row row) {
  for (auto& [name, rows] : tables_) {
    if (name == table) {
      rows.push_back(std::move(row));
      return;
    }
  }
  tables_.emplace_back(std::string(table), std::vector<Row>{std::move(row)});
}

double BenchReport::Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  if (p <= 0.0) return *std::min_element(values.begin(), values.end());
  // Nearest rank: the smallest value with at least p% of the sample at or
  // below it.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  size_t idx = std::min(values.size() - 1, rank == 0 ? 0 : rank - 1);
  std::nth_element(values.begin(), values.begin() + idx, values.end());
  return values[idx];
}

void BenchReport::SetLatencyMetrics(std::string_view prefix,
                                    std::vector<double> values) {
  SetMetric(StrCat(prefix, "_p50"), Percentile(values, 50.0));
  SetMetric(StrCat(prefix, "_p95"), Percentile(values, 95.0));
  SetMetric(StrCat(prefix, "_p99"), Percentile(std::move(values), 99.0));
}

double BenchReport::Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), values.begin() + mid);
  return (lower + upper) / 2.0;
}

std::string BenchReport::ToJson(bool pretty) const {
  JsonWriter w(pretty);
  w.BeginObject();
  w.KV("bench", name_);
  w.KV("schema_version", 1);
  w.Key("config");
  w.BeginObject();
  for (const Entry& e : config_) {
    if (e.numeric) {
      w.KV(e.key, e.number);
    } else {
      w.KV(e.key, e.text);
    }
  }
  w.EndObject();
  w.Key("metrics");
  w.BeginObject();
  for (const Entry& e : metrics_) w.KV(e.key, e.number);
  w.EndObject();
  w.Key("tables");
  w.BeginObject();
  for (const auto& [name, rows] : tables_) {
    w.Key(name);
    w.BeginArray();
    for (const Row& row : rows) {
      w.BeginObject();
      for (const Row::Cell& c : row.cells_) {
        if (c.numeric) {
          w.KV(c.column, c.number);
        } else {
          w.KV(c.column, c.text);
        }
      }
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

Status BenchReport::WriteFile(const std::string& directory) const {
  std::string path = directory + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError(StrCat("cannot open ", path, " for writing"));
  }
  std::string json = ToJson(/*pretty=*/true);
  json += "\n";
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::ExecutionError(StrCat("short write to ", path));
  }
  std::printf("wrote %s\n", path.c_str());
  return Status::OK();
}

}  // namespace sfsql::obs
