#ifndef SFSQL_OBS_EXPORT_H_
#define SFSQL_OBS_EXPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace sfsql::obs {

/// Renders the registry in the Prometheus text exposition format (one
/// `# HELP` / `# TYPE` header per family, histogram series expanded into
/// cumulative `_bucket{le=...}` lines plus `_sum` and `_count`). Families
/// appear in registration order, so output is deterministic for a
/// deterministic program.
std::string ToPrometheusText(const MetricsRegistry& registry);

/// Renders the registry as JSON:
/// {"metrics":[{"name":...,"type":"counter|gauge|histogram","help":...,
///   "series":[{"labels":{...},"value":N}           — counter/gauge
///             {"labels":{...},"count":N,"sum":S,
///              "buckets":[{"le":B,"count":C},...]} — histogram (cumulative)
/// ]}]}
std::string ToJson(const MetricsRegistry& registry, bool pretty = true);

/// Writes the same object ToJson renders into an existing JsonWriter, so
/// callers (serve_driver --stats-json) can embed the registry as one member
/// of a larger document.
void WriteRegistryJson(const MetricsRegistry& registry, JsonWriter& w);

}  // namespace sfsql::obs

#endif  // SFSQL_OBS_EXPORT_H_
