#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"
#include "common/strings.h"

namespace sfsql::obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Newline() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (stack_.back().count > 0) out_ += ',';
  if (stack_.back().array) Newline();
  ++stack_.back().count;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame{0, false});
}

void JsonWriter::EndObject() {
  bool had_values = stack_.back().count > 0;
  stack_.pop_back();
  if (had_values) Newline();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame{0, true});
}

void JsonWriter::EndArray() {
  bool had_values = stack_.back().count > 0;
  stack_.pop_back();
  if (had_values) Newline();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (stack_.back().count > 0) out_ += ',';
  ++stack_.back().count;
  Newline();
  out_ += '"';
  out_ += Escape(key);
  out_ += pretty_ ? "\": " : "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Int(long long value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(unsigned long long value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision_, value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SFSQL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(std::string_view message) const {
    return Status::InvalidArgument(
        StrCat("JSON parse error at offset ", std::to_string(pos_), ": ",
               message));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return v;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SFSQL_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':' after object key");
      SFSQL_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      v.members.emplace_back(std::move(key.string), std::move(value));
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return v;
    while (true) {
      SFSQL_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.items.push_back(std::move(item));
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  /// Reads the four hex digits of a \uXXXX escape (pos_ on the first digit);
  /// -1 on malformed input.
  int ParseHex4() {
    if (pos_ + 4 > text_.size()) return -1;
    int cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else return -1;
      cp = (cp << 4) | d;
    }
    pos_ += 4;
    return cp;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // '"'
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            int cp = ParseHex4();
            if (cp < 0) return Error("bad \\u escape");
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a low surrogate escape must follow, and the
              // pair decodes to one supplementary-plane code point.
              if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired surrogate in \\u escape");
              }
              pos_ += 2;
              const int lo = ParseHex4();
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("unpaired surrogate in \\u escape");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired surrogate in \\u escape");
            }
            AppendUtf8(static_cast<uint32_t>(cp), &v.string);
            break;
          }
          default:
            return Error("bad escape sequence");
        }
      } else {
        v.string += c;
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return Error("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return JsonValue{};
    }
    return Error("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace sfsql::obs
