#include "obs/trace.h"

#include <cstdio>

namespace sfsql::obs {

void Tracer::Span::Attr(std::string_view key, std::string_view value) {
  if (tracer_ != nullptr) tracer_->AddAttr(id_, key, std::string(value));
}

void Tracer::Span::Attr(std::string_view key, long long value) {
  if (tracer_ != nullptr) tracer_->AddAttr(id_, key, std::to_string(value));
}

void Tracer::Span::Attr(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  tracer_->AddAttr(id_, key, buf);
}

void Tracer::Span::End() {
  if (tracer_ != nullptr) tracer_->EndSpan(id_);
  tracer_ = nullptr;
  id_ = -1;
}

Tracer::Span Tracer::StartSpan(std::string name, int parent_id) {
  uint64_t now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord record;
  record.id = static_cast<int>(spans_.size());
  record.parent = parent_id;
  record.name = std::move(name);
  record.start_nanos = now;
  spans_.push_back(std::move(record));
  return Span(this, spans_.back().id);
}

int Tracer::AddCompleteSpan(
    std::string name, int parent_id, uint64_t start_nanos, uint64_t end_nanos,
    std::vector<std::pair<std::string, std::string>> attributes) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord record;
  record.id = static_cast<int>(spans_.size());
  record.parent = parent_id;
  record.name = std::move(name);
  record.start_nanos = start_nanos;
  record.end_nanos = end_nanos;
  record.attributes = std::move(attributes);
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void Tracer::EndSpan(int id) {
  uint64_t now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= 0 && id < static_cast<int>(spans_.size()) &&
      spans_[id].end_nanos == 0) {
    spans_[id].end_nanos = now;
  }
}

void Tracer::AddAttr(int id, std::string_view key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= 0 && id < static_cast<int>(spans_.size())) {
    spans_[id].attributes.emplace_back(std::string(key), std::move(value));
  }
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  // Children in recording order (== start order: ids are assigned under the
  // tracer lock as spans open).
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent >= 0 && s.parent < static_cast<int>(spans.size())) {
      children[s.parent].push_back(s.id);
    } else {
      roots.push_back(s.id);
    }
  }
  std::string out;
  auto render = [&](auto&& self, int id, const std::string& prefix,
                    bool last) -> void {
    const SpanRecord& s = spans[id];
    out += prefix;
    out += last ? "└─ " : "├─ ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), " (%.3f ms)", s.seconds() * 1e3);
    out += s.name;
    out += buf;
    for (const auto& [k, v] : s.attributes) {
      out += "  ";
      out += k;
      out += "=";
      out += v;
    }
    out += '\n';
    std::string child_prefix = prefix + (last ? "   " : "│  ");
    for (size_t i = 0; i < children[id].size(); ++i) {
      self(self, children[id][i], child_prefix,
           i + 1 == children[id].size());
    }
  };
  for (size_t i = 0; i < roots.size(); ++i) {
    render(render, roots[i], "", i + 1 == roots.size());
  }
  return out;
}

std::string Tracer::RenderTree() const { return RenderSpanTree(Snapshot()); }

void Tracer::WriteSpansJson(const std::vector<SpanRecord>& spans,
                            JsonWriter& w) {
  w.BeginArray();
  for (const SpanRecord& s : spans) {
    w.BeginObject();
    w.KV("id", s.id);
    w.KV("parent", s.parent);
    w.KV("name", s.name);
    w.KV("start_nanos", static_cast<unsigned long long>(s.start_nanos));
    w.KV("end_nanos", static_cast<unsigned long long>(s.end_nanos));
    w.KV("seconds", s.seconds());
    if (!s.attributes.empty()) {
      w.Key("attributes");
      w.BeginObject();
      for (const auto& [k, v] : s.attributes) w.KV(k, v);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
}

void Tracer::WriteJson(JsonWriter& w) const {
  WriteSpansJson(Snapshot(), w);
}

void Tracer::WriteForestJson(const std::vector<SpanRecord>& spans,
                             JsonWriter& w) {
  // Children in id order, which is start order (ids are assigned under the
  // tracer lock as spans open) — matching RenderSpanTree.
  std::vector<std::vector<int>> children(spans.size());
  std::vector<int> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent >= 0 && s.parent < static_cast<int>(spans.size())) {
      children[s.parent].push_back(s.id);
    } else {
      roots.push_back(s.id);
    }
  }
  auto write = [&](auto&& self, int id) -> void {
    const SpanRecord& s = spans[id];
    w.BeginObject();
    w.KV("name", s.name);
    w.KV("start_nanos", static_cast<unsigned long long>(s.start_nanos));
    w.KV("end_nanos", static_cast<unsigned long long>(s.end_nanos));
    w.KV("seconds", s.seconds());
    if (!s.attributes.empty()) {
      w.Key("attributes");
      w.BeginObject();
      for (const auto& [k, v] : s.attributes) w.KV(k, v);
      w.EndObject();
    }
    if (!children[id].empty()) {
      w.Key("children");
      w.BeginArray();
      for (int c : children[id]) self(self, c);
      w.EndArray();
    }
    w.EndObject();
  };
  w.BeginArray();
  for (int r : roots) write(write, r);
  w.EndArray();
}

void Tracer::WriteForestJson(JsonWriter& w) const {
  WriteForestJson(Snapshot(), w);
}

}  // namespace sfsql::obs
