#ifndef SFSQL_OBS_CLOCK_H_
#define SFSQL_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace sfsql::obs {

/// Time source for every wall-clock measurement in the observability layer
/// (phase timers, spans, the slow-translation log, bench reports). Injectable
/// so tests — and the EXPLAIN golden files — run on a deterministic clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNanos() const = 0;

  /// The process-wide std::chrono::steady_clock adapter (never null). Used
  /// whenever a configuration leaves its clock pointer unset.
  static const Clock* Steady();
};

/// Resolves an optional injected clock to a usable one.
inline const Clock* ClockOrSteady(const Clock* clock) {
  return clock != nullptr ? clock : Clock::Steady();
}

/// Deterministic clock for tests and golden files. Thread-safe: NowNanos
/// atomically returns the current reading and then advances it by
/// `auto_advance_nanos`, so successive measurements see strictly increasing,
/// fully reproducible times without any real waiting.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(uint64_t start_nanos = 0, uint64_t auto_advance_nanos = 0)
      : now_(start_nanos), auto_advance_(auto_advance_nanos) {}

  uint64_t NowNanos() const override {
    return now_.fetch_add(auto_advance_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }

  void Advance(uint64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

  void set_auto_advance(uint64_t nanos) {
    auto_advance_.store(nanos, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<uint64_t> now_;
  std::atomic<uint64_t> auto_advance_;
};

/// Nanosecond delta as (fractional) seconds.
inline double NanosToSeconds(uint64_t nanos) { return nanos * 1e-9; }

/// Inverse of NanosToSeconds (rounded to the nearest nanosecond).
inline uint64_t SecondsToNanos(double seconds) {
  return static_cast<uint64_t>(seconds * 1e9 + 0.5);
}

}  // namespace sfsql::obs

#endif  // SFSQL_OBS_CLOCK_H_
